"""Traffic-scenario library: registry, determinism, trace replay and
the golden envelope gates.

Four layers of pinning, shallow to deep:

* registry round-trips and error paths (``ScenarioError`` on unknown
  names, duplicate registration, bad arguments);
* seed determinism — same seed means *byte-equal* feature streams,
  independent of block size and process (literal sha256 pins);
* ``TraceReplayStream`` schema validation — every malformed-trace shape
  raises ``TraceFormatError`` naming the offence;
* the envelope regression gate — each scenario's freshly computed
  iced/drips/static envelope must sit inside the committed golden's
  tolerance band (``tests/envelopes/*.json``), and the fast engine must
  stay float-identical to the scalar reference per scenario.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ScenarioError, TraceFormatError
from repro.streaming.envelopes import (
    ENVELOPE_SCHEMA,
    STRATEGIES,
    compare_envelopes,
    envelope_path,
    load_envelope,
    scenario_envelope,
    weighted_percentile,
    write_envelope,
)
from repro.streaming.scenarios import (
    DEFAULT_TRACE_PATH,
    TraceReplayStream,
    describe_scenarios,
    get_scenario,
    make_scenario,
    register_scenario,
    scenario_names,
)
from repro.streaming.app import gcn_app
from repro.streaming.drips import simulate_drips, simulate_static
from repro.streaming.engine import simulate_stream
from repro.streaming.partitioner import partition_app, streaming_cgra
from repro.streaming.stage import inputs_of
from repro.streaming.workloads import (
    EnzymeGraphStream,
    SparseMatrixStream,
    take_inputs,
)

GOLDEN_DIR = Path(__file__).parent / "envelopes"

EXPECTED_SCENARIOS = {
    "branchy", "bursty", "diurnal", "enzyme",
    "phase_shift", "sparse_lu", "trace_replay",
}


def column_bytes(blocks) -> dict[str, bytes]:
    """Concatenate a block stream's columns — block-size independent."""
    columns: dict[str, list[np.ndarray]] = {}
    for block in blocks:
        for key, values in block.features.items():
            columns.setdefault(key, []).append(values)
    return {k: np.concatenate(v).tobytes() for k, v in columns.items()}


def stream_digest(blocks) -> str:
    digest = hashlib.sha256()
    for key, raw in sorted(column_bytes(blocks).items()):
        digest.update(key.encode())
        digest.update(raw)
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_all_expected_scenarios_registered(self):
        assert EXPECTED_SCENARIOS <= set(scenario_names())
        assert scenario_names() == sorted(scenario_names())

    def test_get_scenario_round_trips(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert spec.name == name
            assert spec.description

    def test_unknown_scenario_names_the_known_ones(self):
        with pytest.raises(ScenarioError) as err:
            get_scenario("rush_hour")
        message = str(err.value)
        assert "rush_hour" in message
        for name in scenario_names():
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register_scenario("enzyme", app=gcn_app,
                              description="dup")(lambda seed, n: None)

    def test_invalid_name_rejected(self):
        with pytest.raises(ScenarioError):
            register_scenario("bad name", app=gcn_app,
                              description="x")(lambda seed, n: None)

    def test_negative_length_rejected(self):
        with pytest.raises(ScenarioError, match="n must be"):
            make_scenario("enzyme", n=-1)

    def test_describe_matches_registry(self):
        rows = describe_scenarios()
        assert [r["name"] for r in rows] == scenario_names()
        assert all(r["app"] for r in rows)

    def test_scenario_binds_app_and_stream(self):
        scenario = make_scenario("branchy", n=8)
        assert scenario.name == "branchy"
        assert scenario.app.name == "branchy"
        assert scenario.stream.num_inputs() == 8


# ---------------------------------------------------------------------------
# Determinism


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_same_seed_is_byte_equal_across_block_sizes(self, name):
        a = make_scenario(name, seed=3, n=150)
        b = make_scenario(name, seed=3, n=150)
        assert stream_digest(a.feature_blocks(32)) == stream_digest(
            b.feature_blocks(57)
        )

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS
                                            - {"trace_replay"}))
    def test_different_seed_differs(self, name):
        a = make_scenario(name, seed=3, n=150)
        b = make_scenario(name, seed=4, n=150)
        assert stream_digest(a.feature_blocks()) != stream_digest(
            b.feature_blocks()
        )

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_generate_matches_blocks(self, name):
        scenario = make_scenario(name, n=100)
        materialized = scenario.generate()
        assert len(materialized) == 100
        for a, b in zip(materialized,
                        inputs_of(scenario.feature_blocks(13))):
            assert a.index == b.index
            assert a.features == b.features

    def test_default_seed_is_the_registered_one(self):
        assert make_scenario("enzyme", n=4).seed == 7
        assert make_scenario("sparse_lu", n=4).seed == 11

    # Literal pins: these digests were computed once and committed.
    # They fail if the drawn values depend on anything beyond
    # (seed, segment index) — process state, dict order, block size —
    # or if the generator arithmetic changes silently.
    CROSS_PROCESS_PINS = {
        "enzyme":
            "77eb4fa2892f9f5368e1a2490bdfa7182a6fe0de7f9b7019409f1f11aa16ae4a",
        "sparse":
            "673258b6f19dc58f4479cdd2bef71126f0f0f176ea41064a7520d541207f903d",
    }

    def first_block_digest(self, stream) -> str:
        block = next(stream.feature_blocks())
        digest = hashlib.sha256()
        for key in sorted(block.features):
            digest.update(key.encode())
            digest.update(block.features[key].tobytes())
        return digest.hexdigest()

    def test_enzyme_stream_pinned_across_processes(self):
        stream = EnzymeGraphStream(num_graphs=32, seed=7)
        assert (self.first_block_digest(stream)
                == self.CROSS_PROCESS_PINS["enzyme"])

    def test_sparse_stream_pinned_across_processes(self):
        stream = SparseMatrixStream(num_matrices=32, seed=11)
        assert (self.first_block_digest(stream)
                == self.CROSS_PROCESS_PINS["sparse"])


# ---------------------------------------------------------------------------
# Trace replay


class TestTraceReplay:
    def write(self, tmp_path, text, name="trace.csv") -> Path:
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_bundled_trace_loads(self):
        stream = TraceReplayStream(DEFAULT_TRACE_PATH)
        assert set(stream.columns) >= {"n_nodes", "degree", "nnz",
                                       "features"}
        assert stream.num_inputs() == 48

    def test_replay_cycles_rows_to_length(self):
        stream = TraceReplayStream(DEFAULT_TRACE_PATH, num_inputs=100)
        rows = stream.generate()
        assert len(rows) == 100
        assert rows[0].features == rows[48].features
        assert rows[1].features == rows[49].features

    def test_block_shape_matches_generate(self, tmp_path):
        path = self.write(tmp_path, "x,y\n1,2\n3,4\n5,6\n")
        stream = TraceReplayStream(path, num_inputs=7)
        from_blocks = inputs_of(stream.feature_blocks(2))
        assert [r.features for r in from_blocks] == [
            r.features for r in stream.generate()
        ]
        assert from_blocks[3].features == {"x": 1.0, "y": 2.0}

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot open"):
            TraceReplayStream(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no header"):
            TraceReplayStream(self.write(tmp_path, ""))

    def test_header_only(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no data rows"):
            TraceReplayStream(self.write(tmp_path, "x,y\n"))

    def test_missing_required_columns(self, tmp_path):
        path = self.write(tmp_path, "n_nodes,degree\n3,2\n")
        with pytest.raises(TraceFormatError,
                           match=r"missing required columns.*nnz"):
            TraceReplayStream(path, columns=("n_nodes", "degree", "nnz"))

    def test_non_numeric_cell_names_row_and_column(self, tmp_path):
        path = self.write(tmp_path, "x,y\n1,2\n3,oops\n")
        with pytest.raises(TraceFormatError,
                           match=r":3: column 'y'.*not a number"):
            TraceReplayStream(path)

    def test_non_finite_cell_rejected(self, tmp_path):
        path = self.write(tmp_path, "x\n1\nnan\n")
        with pytest.raises(TraceFormatError, match="non-finite"):
            TraceReplayStream(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = self.write(tmp_path, "x,y\n1,2\n3\n")
        with pytest.raises(TraceFormatError, match="expected 2 columns"):
            TraceReplayStream(path)

    def test_duplicate_column_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="duplicate"):
            TraceReplayStream(self.write(tmp_path, "x,x\n1,2\n"))

    def test_blank_column_name_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="blank column"):
            TraceReplayStream(self.write(tmp_path, "x,\n1,2\n"))


# ---------------------------------------------------------------------------
# Envelope mechanics


class TestEnvelopeMechanics:
    def test_weighted_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0]
        weights = [1.0, 1.0, 98.0]
        assert weighted_percentile(values, weights, 0.5) == 30.0
        assert weighted_percentile(values, weights, 0.0) == 10.0
        assert weighted_percentile(values, weights, 1.0) == 30.0
        assert weighted_percentile([], [], 0.5) == 0.0
        with pytest.raises(ValueError):
            weighted_percentile(values, weights, 1.5)

    def test_compare_accepts_within_band(self):
        golden = {"strategies": {"iced": {"energy_uj": 100.0}}}
        fresh = {"strategies": {"iced": {"energy_uj": 104.0}}}
        assert compare_envelopes(golden, fresh, rtol=0.05) == []

    def test_compare_flags_out_of_band_floats(self):
        golden = {"strategies": {"iced": {"energy_uj": 100.0}}}
        fresh = {"strategies": {"iced": {"energy_uj": 106.0}}}
        problems = compare_envelopes(golden, fresh, rtol=0.05)
        assert len(problems) == 1
        assert "energy_uj" in problems[0]

    def test_compare_is_exact_on_identity_fields(self):
        golden = {"schema": 1, "inputs": 240, "windows": 24}
        fresh = {"schema": 1, "inputs": 239, "windows": 24}
        problems = compare_envelopes(golden, fresh)
        assert problems and "inputs" in problems[0]

    def test_compare_flags_missing_and_extra_keys(self):
        problems = compare_envelopes({"a": 1.0, "b": 2.0},
                                     {"a": 1.0, "c": 3.0})
        assert any("b: missing" in p for p in problems)
        assert any("c: unexpected" in p for p in problems)

    def test_write_load_round_trip(self, tmp_path):
        envelope = {"schema": ENVELOPE_SCHEMA, "scenario": "x",
                    "strategies": {"iced": {"energy_uj": 1.5}}}
        path = envelope_path(tmp_path, "x")
        write_envelope(envelope, path)
        assert load_envelope(path) == envelope
        # Canonical: byte-stable on rewrite.
        first = path.read_bytes()
        write_envelope(json.loads(path.read_text()), path)
        assert path.read_bytes() == first

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ScenarioError, match="unknown strategies"):
            scenario_envelope("enzyme", strategies=("warp",))


# ---------------------------------------------------------------------------
# Golden gates + engine identity (the expensive end: real partitions)


def scenario_partition(name, inputs):
    scenario = make_scenario(name, n=inputs)
    profile = take_inputs(scenario.feature_blocks(),
                          min(50, max(5, inputs // 3)))
    return scenario, partition_app(scenario.app, streaming_cgra(), profile)


class TestGoldenEnvelopes:
    def test_every_scenario_has_a_committed_golden(self):
        for name in scenario_names():
            assert envelope_path(GOLDEN_DIR, name).exists(), (
                f"no golden envelope for {name!r} — run "
                f"tools/update_envelopes.py"
            )

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_fresh_envelope_within_golden_band(self, name):
        golden = load_envelope(envelope_path(GOLDEN_DIR, name))
        assert golden["schema"] == ENVELOPE_SCHEMA
        assert set(golden["strategies"]) == set(STRATEGIES)
        fresh = scenario_envelope(name, inputs=golden["inputs"],
                                  window=golden["window"],
                                  seed=golden["seed"])
        problems = compare_envelopes(golden, fresh)
        assert not problems, "\n".join(problems)

    @pytest.mark.parametrize("name", ["branchy", "phase_shift"])
    def test_fast_reference_identity_on_real_partition(self, name):
        scenario, partition = scenario_partition(name, 60)
        inputs = scenario.generate()
        from repro.streaming.drips import (
            fast_simulate_drips,
            fast_simulate_static,
        )
        from repro.streaming.engine import fast_simulate_stream

        pairs = [
            (simulate_stream, fast_simulate_stream),
            (simulate_drips, fast_simulate_drips),
            (simulate_static, fast_simulate_static),
        ]
        for reference, fast in pairs:
            ref = reference(partition, inputs, window=10)
            got = fast(partition, scenario.feature_blocks(17), window=10)
            assert asdict(ref) == asdict(got)
