"""The exception hierarchy: everything catchable as IcedError."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_iced_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (isinstance(obj, type) and issubclass(obj, Exception)
                    and obj is not errors.IcedError):
                assert issubclass(obj, errors.IcedError), name

    def test_mapping_error_carries_last_ii(self):
        exc = errors.MappingError("nope", last_ii=12)
        assert exc.last_ii == 12
        assert "nope" in str(exc)

    def test_mapping_error_default_ii(self):
        assert errors.MappingError("x").last_ii is None

    def test_partition_is_streaming_error(self):
        assert issubclass(errors.PartitionError, errors.StreamingError)

    def test_island_config_is_architecture_error(self):
        assert issubclass(errors.IslandConfigError,
                          errors.ArchitectureError)

    def test_catch_all_at_api_boundary(self):
        from repro.arch import CGRA
        with pytest.raises(errors.IcedError):
            CGRA.build(0, 0)
