"""The DSE subsystem: space expansion, Pareto extraction, sweep
driver determinism and cache provenance.

The load-bearing contracts:

* Pareto frontiers are non-dominated and *permutation-stable* —
  pure functions of the point set (hypothesis-tested);
* ``DesignSpace.expand`` is deterministic, densely indexed and drops
  only island shapes that do not fit their fabric;
* the optimized driver (cache reuse, blob aliasing, warm-started II,
  vectorized scoring) produces byte-identical rows *and* final mapping
  blobs to the naive per-point baseline, and ``jobs=2`` matches
  ``jobs=1`` byte for byte;
* DSE-produced disk artifacts carry the sweep provenance tag and the
  per-sweep footprint report groups by it.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.compile.diskcache import DiskCache
from repro.dse import (
    DesignPoint,
    DesignSpace,
    dominates,
    pareto_front,
    run_dse,
)
from repro.dse.space import _parse_shape

SMALL_SPACE = DesignSpace(
    name="test",
    fabrics=((4, 4),),
    islands=((2, 2),),
    topologies=("mesh",),
    vf_levels=(3, 4),
    strategies=("baseline", "per_tile_dvfs", "iced"),
    kernels=("fir", "mvt"),
)


# -- pareto properties -------------------------------------------------------

def _rows(draw_objs):
    return [
        {"index": i, "energy_uj": e, "makespan_us": m, "area_mm2": a}
        for i, (e, m, a) in enumerate(draw_objs)
    ]


objective = st.tuples(
    st.integers(0, 6).map(float),
    st.integers(0, 6).map(float),
    st.integers(0, 6).map(float),
)


@given(st.lists(objective, min_size=1, max_size=24))
@settings(max_examples=120, deadline=None)
def test_pareto_front_is_non_dominated_and_complete(objs):
    rows = _rows(objs)
    front = pareto_front(rows)
    assert front, "a non-empty set always has a non-dominated point"
    front_ids = {row["index"] for row in front}
    for row in front:
        assert not any(dominates(other, row) for other in rows)
    # Completeness: anything off the frontier is dominated by someone.
    for row in rows:
        if row["index"] not in front_ids:
            assert any(dominates(other, row) for other in rows)


@given(st.lists(objective, min_size=1, max_size=20),
       st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_pareto_front_is_permutation_stable(objs, rng):
    rows = _rows(objs)
    shuffled = list(rows)
    rng.shuffle(shuffled)
    assert pareto_front(shuffled) == pareto_front(rows)


def test_duplicate_objectives_all_survive():
    rows = _rows([(1.0, 1.0, 1.0), (1.0, 1.0, 1.0), (2.0, 2.0, 2.0)])
    front = pareto_front(rows)
    assert [row["index"] for row in front] == [0, 1]


def test_dominates_is_strict():
    a = {"energy_uj": 1.0, "makespan_us": 1.0, "area_mm2": 1.0}
    assert not dominates(a, dict(a))
    better = dict(a, energy_uj=0.5)
    assert dominates(better, a)
    assert not dominates(a, better)


# -- space expansion ---------------------------------------------------------

def test_expand_is_deterministic_and_densely_indexed():
    points = SMALL_SPACE.expand()
    assert points == SMALL_SPACE.expand()
    assert [p.index for p in points] == list(range(len(points)))
    assert len(points) == 2 * 3 * 2  # vf x strategies x kernels


def test_expand_drops_oversized_islands_only():
    space = DesignSpace(fabrics=((4, 4), (8, 8)), islands=((8, 8),),
                        strategies=("baseline",), kernels=("fir",))
    points = space.expand()
    assert [(p.rows, p.cols) for p in points] == [(8, 8)]
    assert points[0].index == 0


def test_space_hash_tracks_content():
    assert SMALL_SPACE.space_hash() == SMALL_SPACE.space_hash()
    other = DesignSpace.from_dict(
        dict(SMALL_SPACE.to_dict(), iterations=2048)
    )
    assert other.space_hash() != SMALL_SPACE.space_hash()


def test_space_json_round_trip():
    rebuilt = DesignSpace.from_dict(
        json.loads(json.dumps(SMALL_SPACE.to_dict()))
    )
    assert rebuilt == SMALL_SPACE
    assert rebuilt.space_hash() == SMALL_SPACE.space_hash()


def test_parse_shape_rejects_junk():
    assert _parse_shape("6x6") == (6, 6)
    for bad in ("6", "ax4", ""):
        try:
            _parse_shape(bad)
        except ValueError:
            continue
        raise AssertionError(f"{bad!r} should not parse")


def test_point_keys_partition_the_axes():
    point = DesignPoint(index=0, rows=6, cols=6, island=(2, 2),
                        topology="torus", vf_levels=4,
                        strategy="iced", kernel="fir")
    assert point.fabric_key == (6, 6, (2, 2), "torus", 4)
    assert point.geometry_key == (6, 6, (2, 2), "torus")


# -- driver determinism ------------------------------------------------------

def test_optimized_matches_naive_rows_and_blobs():
    opt_blobs, naive_blobs = {}, {}
    optimized = run_dse(SMALL_SPACE, seed=0, blob_sink=opt_blobs)
    naive = run_dse(SMALL_SPACE, seed=0, naive=True,
                    blob_sink=naive_blobs)
    assert optimized["points"] == naive["points"]
    assert optimized["frontier"] == naive["frontier"]
    assert opt_blobs == naive_blobs
    assert optimized["stats"]["compiles"] < naive["stats"]["compiles"]
    assert optimized["stats"]["aliased_blobs"] > 0


def test_jobs_two_matches_jobs_one_byte_for_byte(tmp_path):
    serial_blobs, pool_blobs = {}, {}
    serial = run_dse(SMALL_SPACE, jobs=1, seed=0,
                     cache_dir=str(tmp_path / "c1"),
                     blob_sink=serial_blobs)
    pool = run_dse(SMALL_SPACE, jobs=2, seed=0,
                   cache_dir=str(tmp_path / "c2"),
                   blob_sink=pool_blobs)
    dump = lambda doc, section: json.dumps(doc[section], sort_keys=True)
    assert dump(serial, "points") == dump(pool, "points")
    assert dump(serial, "frontier") == dump(pool, "frontier")
    assert serial_blobs == pool_blobs


def test_unmappable_points_are_recorded_not_raised():
    space = DesignSpace(fabrics=((1, 1),), islands=((1, 1),),
                        strategies=("baseline",),
                        kernels=("fft",), vf_levels=(3,))
    result = run_dse(space, seed=0)
    statuses = {row["status"] for row in result["points"]}
    assert statuses == {"unmappable"}
    assert result["frontier"] == []
    assert result["stats"]["unmappable"] == len(result["points"])


def test_result_document_shape():
    result = run_dse(DesignSpace(fabrics=((4, 4),),
                                 strategies=("baseline",),
                                 kernels=("fir",)), seed=0)
    assert result["schema"] == 1
    assert result["space_hash"] == DesignSpace(
        fabrics=((4, 4),), strategies=("baseline",), kernels=("fir",)
    ).space_hash()
    row = result["points"][0]
    for field in ("index", "fabric", "island", "topology", "vf_levels",
                  "strategy", "kernel", "status", "ii", "power_mw",
                  "energy_uj", "makespan_us", "area_mm2"):
        assert field in row


# -- sweep provenance --------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_artifacts_carry_sweep_tag_and_footprint_groups(tmp_path, jobs):
    # jobs=2 pins the pool path: the executor's worker-blob promotion
    # must not rewrite (and thereby untag) envelopes the driver
    # already stamped with sweep provenance.
    root = str(tmp_path / "cache")
    space = DesignSpace(fabrics=((4, 4),), vf_levels=(3, 4),
                        strategies=("baseline", "iced"), kernels=("fir",))
    result = run_dse(space, seed=0, cache_dir=root, jobs=jobs)
    disk = DiskCache(root)
    assert len(disk) > 0
    footprint = disk.sweep_footprint()
    assert set(footprint) == {space.space_hash()}
    assert (footprint[space.space_hash()]["artifacts"] == len(disk))
    # meta() surfaces the tag for individual artifacts.
    tagged = [
        disk.meta(path.stem) for path in disk.artifact_paths()
    ]
    assert all(m.get("sweep", {}).get("space_hash") == space.space_hash()
               for m in tagged)
    points = {m["sweep"]["point"] for m in tagged}
    assert points <= {row["index"] for row in result["points"]}


def test_tag_sweep_keeps_first_producer(tmp_path):
    root = str(tmp_path / "cache")
    space = DesignSpace(fabrics=((4, 4),), strategies=("baseline",),
                        kernels=("fir",))
    run_dse(space, seed=0, cache_dir=root)
    disk = DiskCache(root)
    key = disk.artifact_paths()[0].stem
    before = disk.meta(key)["sweep"]
    assert not disk.tag_sweep(key, "deadbeef0000", 99)
    assert disk.meta(key)["sweep"] == before


# -- sweep resume ------------------------------------------------------------

#: Two V/F depths -> two fabric groups -> the manifest checkpoints
#: mid-sweep, which is what partial-resume needs to exercise.
RESUME_SPACE = DesignSpace(name="resume", fabrics=((4, 4),),
                           vf_levels=(3, 4),
                           strategies=("baseline", "iced"),
                           kernels=("fir",))


def test_resume_replays_every_completed_row(tmp_path):
    manifest = tmp_path / "sweep.resume.json"
    first = run_dse(RESUME_SPACE, seed=0, resume=manifest)
    assert manifest.exists()
    second = run_dse(RESUME_SPACE, seed=0, resume=manifest)
    assert second["points"] == first["points"]
    assert second["frontier"] == first["frontier"]
    assert second["stats"]["resumed"] == len(first["points"])
    assert second["stats"]["compiles"] == 0
    assert second["stats"]["cache_hits"] == 0


def test_partial_manifest_compiles_only_the_rest(tmp_path):
    manifest = tmp_path / "sweep.resume.json"
    full = run_dse(RESUME_SPACE, seed=0, resume=manifest)
    doc = json.loads(manifest.read_text(encoding="utf-8"))
    kept = {index: row for index, row in doc["rows"].items()
            if int(index) % 2 == 0}
    doc["rows"] = kept
    manifest.write_text(json.dumps(doc), encoding="utf-8")
    resumed = run_dse(RESUME_SPACE, seed=0, resume=manifest)
    assert resumed["points"] == full["points"]
    assert resumed["stats"]["resumed"] == len(kept)
    assert (resumed["stats"]["compiles"]
            + resumed["stats"]["cache_hits"]) > 0
    # The checkpoint now holds the whole sweep again.
    refreshed = json.loads(manifest.read_text(encoding="utf-8"))
    assert len(refreshed["rows"]) == len(full["points"])


def test_manifest_from_another_space_is_refused(tmp_path):
    from repro.errors import DSEError

    manifest = tmp_path / "sweep.resume.json"
    run_dse(RESUME_SPACE, seed=0, resume=manifest)
    other = DesignSpace(fabrics=((4, 4),), strategies=("baseline",),
                        kernels=("mvt",))
    with pytest.raises(DSEError, match="space hash"):
        run_dse(other, seed=0, resume=manifest)


def test_resume_with_naive_is_an_error(tmp_path):
    from repro.errors import DSEError

    with pytest.raises(DSEError, match="naive"):
        run_dse(RESUME_SPACE, seed=0, naive=True,
                resume=tmp_path / "x.json")


def test_corrupt_manifest_is_refused(tmp_path):
    from repro.errors import DSEError

    manifest = tmp_path / "sweep.resume.json"
    manifest.write_text("not json", encoding="utf-8")
    with pytest.raises(DSEError, match="unreadable"):
        run_dse(RESUME_SPACE, seed=0, resume=manifest)
    manifest.write_text(json.dumps({"schema": 99}), encoding="utf-8")
    with pytest.raises(DSEError, match="schema"):
        run_dse(RESUME_SPACE, seed=0, resume=manifest)
