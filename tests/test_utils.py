"""Tests for repro.utils: rng, tables, serialization."""

import enum
import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.utils.rng import derive_rng, make_rng
from repro.utils.serialization import to_jsonable
from repro.utils.tables import TextTable, format_series


class TestMakeRng:
    def test_none_is_deterministic(self):
        a = make_rng(None).integers(0, 1000, size=5)
        b = make_rng(None).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_same_seed_same_stream(self):
        assert list(make_rng(42).integers(0, 10**6, 8)) == \
            list(make_rng(42).integers(0, 10**6, 8))

    def test_different_seeds_differ(self):
        assert list(make_rng(1).integers(0, 10**6, 8)) != \
            list(make_rng(2).integers(0, 10**6, 8))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_derive_rng_independent(self):
        base = make_rng(3)
        child_a = derive_rng(base, 0)
        base2 = make_rng(3)
        child_b = derive_rng(base2, 1)
        assert list(child_a.integers(0, 10**6, 4)) != \
            list(child_b.integers(0, 10**6, 4))


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(["kernel", "II"])
        t.add_row(["fir", 4])
        t.add_row(["histogram", 12])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("kernel")
        assert "fir" in lines[2] and "histogram" in lines[3]
        assert len(set(len(line.rstrip()) for line in lines[1:2])) == 1

    def test_wrong_arity_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = TextTable(["x"])
        t.add_row([1.23456])
        assert "1.235" in t.render()

    def test_csv_escaping(self):
        t = TextTable(["name"])
        t.add_row(['has,comma and "quote"'])
        csv = t.to_csv()
        assert '"has,comma and ""quote"""' in csv

    def test_csv_roundtrip_rows(self):
        t = TextTable(["a", "b"])
        t.add_row([1, 2])
        t.add_row([3, 4])
        assert t.to_csv().splitlines() == ["a,b", "1,2", "3,4"]


class TestFormatSeries:
    def test_empty(self):
        assert "(empty)" in format_series("s", [])

    def test_bars_scale_to_peak(self):
        out = format_series("s", [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[2].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_values(self):
        out = format_series("s", [0.0, 0.0])
        assert "0.000" in out


class TestToJsonable:
    def test_scalars(self):
        assert to_jsonable(5) == 5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None

    def test_numpy(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_enum(self):
        class Color(enum.Enum):
            RED = 1
        assert to_jsonable(Color.RED) == "RED"

    def test_dataclass(self):
        @dataclass
        class Point:
            x: int
            y: int
        assert to_jsonable(Point(1, 2)) == {"x": 1, "y": 2}

    def test_nested_and_dumps(self):
        value = {"a": [np.float32(1.5), {"b": (1, 2)}]}
        out = to_jsonable(value)
        json.dumps(out)

    def test_tuple_keys(self):
        assert to_jsonable({(1, 2): "x"}) == {"1,2": "x"}

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())
