"""Tests for the DFG IR: graph container, builder, validation."""

import pytest

from repro.dfg import DFG, DFGBuilder, Opcode
from repro.dfg.ops import arity, is_memory_op, ASSOCIATIVE_OPS
from repro.errors import DFGError


class TestOps:
    def test_arity_defaults(self):
        assert arity(Opcode.ADD) == 2
        assert arity(Opcode.SELECT) == 3
        assert arity(Opcode.NOT) == 1
        assert arity(Opcode.PHI) == 4
        assert arity(Opcode.CONST) == 0

    def test_memory_ops(self):
        assert is_memory_op(Opcode.LOAD)
        assert is_memory_op(Opcode.STORE)
        assert not is_memory_op(Opcode.ADD)

    def test_associative_set(self):
        assert Opcode.ADD in ASSOCIATIVE_OPS
        assert Opcode.SUB not in ASSOCIATIVE_OPS


class TestGraph:
    def test_add_node_assigns_dense_ids(self):
        dfg = DFG()
        assert dfg.add_node(Opcode.ADD) == 0
        assert dfg.add_node(Opcode.MUL) == 1
        assert dfg.num_nodes == 2

    def test_add_edge_and_adjacency(self):
        dfg = DFG()
        a, b = dfg.add_node(Opcode.LOAD), dfg.add_node(Opcode.ADD)
        dfg.add_edge(a, b)
        assert dfg.successors(a) == [b]
        assert dfg.predecessors(b) == [a]
        assert dfg.num_edges == 1

    def test_edge_to_missing_node_rejected(self):
        dfg = DFG()
        a = dfg.add_node(Opcode.ADD)
        with pytest.raises(DFGError):
            dfg.add_edge(a, 99)
        with pytest.raises(DFGError):
            dfg.add_edge(99, a)

    def test_negative_distance_rejected(self):
        dfg = DFG()
        a, b = dfg.add_node(Opcode.ADD), dfg.add_node(Opcode.ADD)
        with pytest.raises(DFGError):
            dfg.add_edge(a, b, dist=-1)

    def test_parallel_edges_allowed(self):
        dfg = DFG()
        a, b = dfg.add_node(Opcode.LOAD), dfg.add_node(Opcode.MUL)
        dfg.add_edge(a, b, port=0)
        dfg.add_edge(a, b, port=1)
        assert dfg.num_edges == 2

    def test_remove_node_cleans_edges(self):
        dfg = DFG()
        a, b, c = (dfg.add_node(Opcode.ADD) for _ in range(3))
        dfg.add_edge(a, b)
        dfg.add_edge(b, c)
        dfg.remove_node(b)
        assert dfg.num_nodes == 2
        assert dfg.num_edges == 0
        assert dfg.successors(a) == []

    def test_memory_nodes(self):
        dfg = DFG()
        ld = dfg.add_node(Opcode.LOAD)
        dfg.add_node(Opcode.ADD)
        st = dfg.add_node(Opcode.STORE)
        assert dfg.memory_nodes() == [ld, st]

    def test_copy_is_independent(self):
        dfg = DFG(name="orig")
        a = dfg.add_node(Opcode.ADD)
        clone = dfg.copy(name="clone")
        clone.add_node(Opcode.MUL)
        assert dfg.num_nodes == 1
        assert clone.num_nodes == 2
        assert clone.name == "clone"
        assert clone.node(a).opcode is Opcode.ADD

    def test_to_networkx(self):
        dfg = DFG()
        a, b = dfg.add_node(Opcode.ADD), dfg.add_node(Opcode.ADD)
        dfg.add_edge(a, b, dist=1)
        g = dfg.to_networkx()
        assert g.number_of_nodes() == 2
        assert list(g.edges(data="dist"))[0][2] == 1


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(DFGError):
            DFG().validate()

    def test_arity_enforced(self):
        dfg = DFG()
        inputs = [dfg.add_node(Opcode.LOAD) for _ in range(3)]
        add = dfg.add_node(Opcode.ADD)
        for i in inputs:
            dfg.add_edge(i, add)
        with pytest.raises(DFGError, match="inputs"):
            dfg.validate()

    def test_dist0_cycle_rejected(self):
        dfg = DFG()
        a, b = dfg.add_node(Opcode.ADD), dfg.add_node(Opcode.ADD)
        dfg.add_edge(a, b)
        dfg.add_edge(b, a)
        with pytest.raises(DFGError, match="cycle"):
            dfg.validate()

    def test_loop_carried_cycle_ok(self):
        dfg = DFG()
        a, b = dfg.add_node(Opcode.PHI), dfg.add_node(Opcode.ADD)
        dfg.add_edge(a, b)
        dfg.add_edge(b, a, dist=1)
        dfg.validate()


class TestBuilder:
    def test_op_wiring(self):
        b = DFGBuilder("t")
        x = b.op(Opcode.LOAD)
        y = b.op(Opcode.LOAD)
        z = b.op(Opcode.MUL, x, y)
        dfg = b.build()
        assert dfg.predecessors(z) == [x, y]
        ports = [e.port for e in dfg.in_edges(z)]
        assert ports == [0, 1]

    def test_recurrence_helper(self):
        b = DFGBuilder("t")
        nodes = b.recurrence([Opcode.PHI, Opcode.ADD, Opcode.SELECT])
        dfg = b.build()
        back = [e for e in dfg.edges() if e.dist == 1]
        assert len(back) == 1
        assert back[0].src == nodes[-1] and back[0].dst == nodes[0]

    def test_back_edge_requires_distance(self):
        b = DFGBuilder("t")
        x = b.op(Opcode.PHI)
        y = b.op(Opcode.ADD, x)
        with pytest.raises(ValueError):
            b.back_edge(y, x, dist=0)

    def test_single_use(self):
        b = DFGBuilder("t")
        b.op(Opcode.ADD)
        b.build()
        with pytest.raises(RuntimeError):
            b.build()

    def test_empty_recurrence_rejected(self):
        with pytest.raises(ValueError):
            DFGBuilder("t").recurrence([])
