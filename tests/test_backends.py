"""The mapper-backend registry, the exact backend and portfolio racing.

Covers the registry/protocol contract, the deterministic portfolio
selection rule, the exact branch-and-bound backend's optimality proofs
on the small Table I kernels, `MappingResult` round-trip stability
(hypothesis), per-backend counter namespacing in merged snapshots, and
the `compile_portfolio` jobs-independence contract.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import (
    Instrumentation,
    MappingCache,
    compile_kernel,
    compile_portfolio,
    mapping_cache_key,
    resolve_config,
    summarize,
)
from repro.compile.parallel import SweepExecutor, SweepItem
from repro.errors import MappingError
from repro.kernels.suite import load_kernel
from repro.mapper.backends import (
    DEFAULT_PORTFOLIO,
    KNOWN_STRATEGIES,
    MapperBackend,
    MappingResult,
    _REGISTRY,
    backend_names,
    describe_backends,
    get_backend,
    make_backend,
    mapping_cost,
    register_backend,
    resolve_strategy,
    select_best,
    strategy_choices,
)
from repro.mapper.exact import MAX_NODES, ExactStats, exact_lower_bound, map_exact
from repro.mapper.validation import validate_mapping


# -- registry and protocol ----------------------------------------------------


class TestRegistry:
    def test_core_backends_registered(self):
        names = backend_names()
        for expected in ("engine", "anneal", "exhaustive", "exact",
                         "portfolio"):
            assert expected in names
        assert names == tuple(sorted(names))

    def test_unknown_backend_is_a_value_error_naming_the_known(self):
        with pytest.raises(ValueError, match="engine"):
            get_backend("no-such-backend")

    def test_make_backend_satisfies_the_protocol(self):
        for name in backend_names():
            backend = make_backend(name)
            assert isinstance(backend, MapperBackend)
            assert backend.name == name

    def test_describe_rows(self):
        rows = describe_backends()
        assert [r["name"] for r in rows] == list(backend_names())
        for row in rows:
            assert isinstance(row["proves_optimality"], bool)
            assert row["summary"]  # every backend documents itself

    def test_register_requires_a_name(self):
        class Nameless:
            proves_optimality = False

        with pytest.raises(ValueError, match="no name"):
            register_backend(Nameless)

    def test_registration_round_trip(self):
        @register_backend
        class Probe:
            name = "test-probe"
            proves_optimality = False

            def map(self, dfg, fabric, config=None, *, analysis=None):
                raise MappingError("probe")

        try:
            assert get_backend("test-probe") is Probe
            assert isinstance(make_backend("test-probe"), MapperBackend)
        finally:
            _REGISTRY.pop("test-probe")

    def test_strategy_vocabulary_single_source(self):
        assert resolve_strategy("per_tile") == "per_tile_dvfs"
        assert set(KNOWN_STRATEGIES) <= set(strategy_choices())
        with pytest.raises(ValueError, match="unknown strategy"):
            resolve_strategy("fastest")


# -- portfolio selection rule -------------------------------------------------


def _result(mapping, backend, ii, cost, optimal=False):
    return MappingResult(mapping=mapping, backend=backend, ii=ii,
                         cost=cost, optimal=optimal)


class TestSelectBest:
    def test_empty_raises(self):
        with pytest.raises(MappingError):
            select_best([])

    def test_no_proof_takes_min_ii_then_cost_then_precedence(
            self, baseline_fig1):
        m = baseline_fig1
        results = [
            (0, _result(m, "engine", 5, 30.0)),
            (1, _result(m, "anneal", 4, 50.0)),
            (2, _result(m, "exact", 4, 20.0)),
        ]
        assert select_best(results) is results[2][1]

    def test_tie_breaks_by_precedence(self, baseline_fig1):
        m = baseline_fig1
        results = [
            (0, _result(m, "engine", 4, 20.0)),
            (1, _result(m, "anneal", 4, 20.0)),
        ]
        assert select_best(results) is results[0][1]

    def test_proof_truncates_lower_precedence_results(self, baseline_fig1):
        m = baseline_fig1
        # A later member with a *better* II must be ignored once an
        # earlier member proved: a sequential run would never have run
        # it, and jobs-N must match jobs-1.
        results = [
            (1, _result(m, "exact", 5, 30.0, optimal=True)),
            (2, _result(m, "anneal", 4, 10.0)),
        ]
        assert select_best(results).backend == "exact"

    def test_results_before_the_proof_stay_eligible(self, baseline_fig1):
        m = baseline_fig1
        results = [
            (0, _result(m, "engine", 4, 10.0)),
            (1, _result(m, "exact", 4, 30.0, optimal=True)),
        ]
        # Same II, cheaper cost, earlier precedence: engine wins even
        # though exact holds the proof.
        assert select_best(results).backend == "engine"


# -- the exact backend --------------------------------------------------------

#: Kernels whose engine warm start sits on the exact lower bound on the
#: paper's 6x6 fabric, so the proof is instant. Five kernels — the
#: acceptance floor for the exact backend.
PROVABLE = ("combrelu", "conv", "gemm", "invert", "relu")


class TestExactBackend:
    @pytest.mark.parametrize("kernel", PROVABLE)
    def test_proves_optimal_on_small_kernels(self, kernel, cgra66):
        dfg = load_kernel(kernel, 1)
        stats = ExactStats()
        mapping = map_exact(dfg, cgra66, stats=stats)
        assert stats.proved_optimal
        assert mapping.ii == exact_lower_bound(dfg, cgra66)
        validate_mapping(mapping)

    def test_lower_bound_is_sound_under_every_strategy(self, cgra66):
        for kernel in ("fir", "conv", "spmv"):
            dfg = load_kernel(kernel, 1)
            lb = exact_lower_bound(dfg, cgra66)
            for strategy in ("baseline", "iced"):
                result = compile_kernel(kernel, cgra66, strategy,
                                        cache=MappingCache())
                assert result.report.ii >= lb

    def test_budget_exhaustion_returns_unproved_incumbent(self, cgra66):
        dfg = load_kernel("fir", 1)
        stats = ExactStats()
        mapping = map_exact(dfg, cgra66, max_probes=50, stats=stats)
        assert stats.budget_exhausted
        assert not stats.proved_optimal
        assert mapping.ii == stats.final_ii  # valid, just unproved
        validate_mapping(mapping)

    def test_oversize_instance_refused(self, cgra66):
        dfg = load_kernel("fft", 1)
        assert dfg.num_nodes > MAX_NODES
        with pytest.raises(MappingError, match="caps at"):
            map_exact(dfg, cgra66)

    def test_exact_through_the_pipeline(self, cgra44):
        result = compile_kernel("relu", cgra44, "iced", backend="exact",
                                cache=MappingCache())
        assert result.backend == "exact"
        assert result.optimal
        assert result.backend_stats["proved_optimal"] == 1
        assert result.cost == pytest.approx(mapping_cost(result.mapping))


# -- MappingResult round-trip (hypothesis) ------------------------------------


stat_dicts = st.dictionaries(
    st.text(alphabet="abcdefghij_.", min_size=1, max_size=12),
    st.integers(min_value=0, max_value=10**9),
    max_size=6,
)


class TestMappingResultRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(backend=st.sampled_from(DEFAULT_PORTFOLIO),
           optimal=st.booleans(), stats=stat_dicts,
           wall_ms=st.floats(min_value=0.0, max_value=1e6,
                             allow_nan=False))
    def test_to_dict_from_dict_round_trip(self, baseline_fig1, fig1,
                                          cgra44, backend, optimal,
                                          stats, wall_ms):
        original = MappingResult.wrap(baseline_fig1, backend,
                                      optimal=optimal, stats=stats,
                                      wall_ms=wall_ms)
        wire = json.loads(json.dumps(original.to_dict(), sort_keys=True))
        restored = MappingResult.from_dict(wire, fig1, cgra44)
        assert restored.to_dict() == original.to_dict()
        # The jobs-independent identity ignores effort and wall-clock.
        fp = original.fingerprint()
        assert "wall_ms" not in fp and "stats" not in fp
        assert fp == restored.fingerprint()


# -- counter namespacing (heterogeneous sweeps) -------------------------------


class TestCounterNamespacing:
    def test_engine_keeps_bare_names(self, cgra44):
        instrument = Instrumentation()
        compile_kernel("relu", cgra44, "iced", cache=MappingCache(),
                       instrument=instrument)
        counters = summarize(instrument.events)["place_route"]
        assert "candidates_probed" in counters
        assert not any(k.startswith("engine.") for k in counters)

    def test_non_engine_counters_are_prefixed(self, cgra44):
        instrument = Instrumentation()
        compile_kernel("relu", cgra44, "iced", backend="exact",
                       cache=MappingCache(), instrument=instrument)
        counters = summarize(instrument.events)["place_route"]
        assert "exact.probes" in counters
        assert "exact.optimal" in counters
        assert "probes" not in counters  # never collides with engine

    def test_heterogeneous_sweep_counters_jobs_independent(self, cgra44):
        snapshots = {}
        for jobs in (1, 2):
            instrument = Instrumentation()
            items = [
                SweepItem(kernel="relu", strategy="iced",
                          backend=backend)
                for backend in ("engine", "exact", "anneal")
            ]
            executor = SweepExecutor(jobs=jobs, cache=MappingCache(),
                                     instrument=instrument)
            outcomes = executor.run(items, cgra44)
            assert all(o.ok for o in outcomes)
            counters = dict(summarize(instrument.events)["place_route"])
            # Every backend's counters land under its own namespace; the
            # engine's bare names are not inflated by the others.
            assert "exact.probes" in counters
            assert counters["anneal.moves_tried"] > 0
            assert "moves_tried" not in counters
            counters.pop("wall_ms")  # the one legitimately varying key
            snapshots[jobs] = counters
        assert snapshots[1] == snapshots[2]


# -- portfolio racing ---------------------------------------------------------


EXACT_SMOKE = {"exact": {"max_probes": 5_000}}


class TestPortfolioBackend:
    def test_rejects_bad_member_lists(self):
        with pytest.raises(ValueError):
            make_backend("portfolio", members=())
        with pytest.raises(ValueError):
            make_backend("portfolio", members=("engine", "portfolio"))
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("portfolio", members=("engine", "wat"))

    def test_comma_string_members(self):
        backend = make_backend("portfolio", members="engine,anneal")
        assert backend.members == ("engine", "anneal")

    def test_inline_race_short_circuits_on_proof(self, fig1, cgra44):
        backend = make_backend("portfolio",
                               members=("exact", "anneal"),
                               member_options=EXACT_SMOKE)
        result = backend.map(fig1, cgra44)
        if result.stats.get("exact.optimal"):
            # The proof arrived first in precedence order: anneal never
            # ran, exactly like a sequential portfolio.
            assert "anneal.ii" not in result.stats
            assert result.optimal

    def test_tolerates_individual_member_failure(self, cgra66):
        dfg = load_kernel("fft", 1)  # over the exact size cap
        backend = make_backend("portfolio", members=("exact", "engine"))
        result = backend.map(dfg, cgra66)
        assert result.stats["exact.failed"] == 1
        assert result.backend == "portfolio"
        assert result.ii > 0

    def test_all_members_failing_raises(self, cgra66):
        dfg = load_kernel("fft", 1)
        backend = make_backend("portfolio", members=("exact",))
        with pytest.raises(MappingError, match="every portfolio member"):
            backend.map(dfg, cgra66)


def _fingerprint(report):
    return {
        "winner_backend": report.winner_backend,
        "winner": json.dumps(report.winner.mapping.to_dict(),
                             sort_keys=True),
        "gap": report.optimality_gap,
        "proven": report.proven_optimal,
        "entries": [(e.backend, e.ii, e.cost, e.optimal)
                    for e in report.entries if not e.cancelled],
    }


class TestCompilePortfolio:
    def test_never_worse_than_any_member(self, cgra44):
        report = compile_portfolio("relu", cgra44, "iced",
                                   member_options=EXACT_SMOKE,
                                   cache=MappingCache())
        member_iis = [e.ii for e in report.entries if e.ii is not None]
        assert report.winner.report.ii <= min(member_iis)
        for member in DEFAULT_PORTFOLIO:
            single = compile_kernel("relu", cgra44, "iced",
                                    backend=member,
                                    backend_options=EXACT_SMOKE.get(
                                        member, {}),
                                    cache=MappingCache())
            assert report.winner.report.ii <= single.report.ii

    def test_jobs_1_and_2_race_identically(self, cgra44):
        prints = {}
        for jobs in (1, 2):
            report = compile_portfolio("relu", cgra44, "iced",
                                       member_options=EXACT_SMOKE,
                                       jobs=jobs, cache=MappingCache())
            prints[jobs] = _fingerprint(report)
        assert prints[1] == prints[2]

    def test_gap_is_zero_when_a_member_proves(self, cgra44):
        report = compile_portfolio("relu", cgra44, "iced",
                                   member_options=EXACT_SMOKE,
                                   cache=MappingCache())
        if report.proven_optimal:
            assert report.optimality_gap == 0
            assert report.gap_of(report.winner_backend) == 0

    def test_winner_published_under_portfolio_key(self, cgra44):
        cache = MappingCache()
        report = compile_portfolio("relu", cgra44, "iced",
                                   member_options=EXACT_SMOKE,
                                   cache=cache)
        key = mapping_cache_key(
            report.winner.mapping.dfg, cgra44,
            resolve_config("iced", None), "portfolio",
            options={"members": list(DEFAULT_PORTFOLIO)},
        )
        meta = cache.meta(key)
        assert meta["backend"] == report.winner_backend
        assert meta["ii"] == report.winner.report.ii

    def test_every_member_failing_raises(self, cgra66):
        dfg = load_kernel("fft", 1)
        with pytest.raises(MappingError, match="every portfolio member"):
            compile_portfolio(dfg, cgra66, "iced", members=("exact",),
                              cache=MappingCache())
