"""Tests for the unified compile pipeline: determinism, cache
correctness (hits revalidate and simulate identically to cold
compiles), fingerprint sensitivity and the instrumentation layer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import CGRA
from repro.compile import (
    Instrumentation,
    MappingCache,
    compile_annealed,
    compile_dfg,
    compile_exhaustive,
    compile_kernel,
    get_cache,
    mapping_cache_key,
    render_report,
    summarize,
)
from repro.dfg import DFGBuilder, Opcode
from repro.kernels import load_kernel
from repro.mapper.engine import EngineConfig
from repro.mapper.validation import validate_mapping
from repro.sim.simulator import simulate_execution

FABRIC = CGRA.build(6, 6, island_shape=(2, 2))


def chain_dfg(n: int = 5, name: str = "chain") -> "DFG":
    b = DFGBuilder(name)
    prev = b.op(Opcode.LOAD)
    for _ in range(n - 2):
        prev = b.op(Opcode.ADD, prev)
    b.op(Opcode.STORE, prev)
    return b.build()


class TestPipeline:
    def test_pass_sequence_and_events(self):
        inst = Instrumentation()
        result = compile_kernel("fir", FABRIC, "iced",
                                cache=MappingCache(), instrument=inst)
        assert [e.pass_name for e in result.events] == [
            "lower", "analyze", "place_route", "refine_islands",
            "validate",
        ]
        assert result.events is not inst.events
        assert inst.total_ms() > 0
        assert result.engine_stats.placements_committed > 0
        assert result.engine_stats.routes_searched > 0

    def test_matches_direct_mapper_entry_points(self):
        from repro.mapper import map_baseline, map_dvfs_aware

        dfg = load_kernel("fir")
        via_pipeline = compile_dfg(dfg, FABRIC, "iced",
                                   cache=MappingCache()).mapping
        via_wrapper = map_dvfs_aware(load_kernel("fir"), FABRIC)
        assert via_pipeline.to_dict() == via_wrapper.to_dict()
        base = map_baseline(load_kernel("fir"), FABRIC)
        assert base.strategy == "baseline"
        assert all(not lv.is_gated for lv in base.tile_levels.values())

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            compile_dfg(chain_dfg(), FABRIC, "turbo")

    def test_bitstream_pass_optional(self):
        result = compile_kernel("fir", FABRIC, cache=MappingCache(),
                                want_bitstream=True)
        assert result.bitstream is not None
        assert result.events[-1].pass_name == "bitstream"
        assert result.bitstream.words_used() > 0


class TestDeterminism:
    def test_byte_identical_across_fresh_pipelines(self):
        """Two cold pipelines must produce byte-identical artifacts."""
        blobs = []
        for _ in range(2):
            cache = MappingCache()
            result = compile_kernel("fir", FABRIC, "iced", cache=cache)
            assert not result.cache_hit
            blobs.append(cache.serialized(result.cache_key))
        assert blobs[0] is not None
        assert blobs[0] == blobs[1]

    def test_cache_key_stable_across_equal_fabrics(self):
        dfg = load_kernel("fir")
        config = EngineConfig(dvfs_aware=True)
        key_a = mapping_cache_key(dfg, CGRA.build(6, 6), config, "engine")
        key_b = mapping_cache_key(load_kernel("fir"), CGRA.build(6, 6),
                                  config, "engine")
        assert key_a == key_b


class TestCacheCorrectness:
    def test_hit_revalidates_and_simulates_identically(self):
        """A cached mapping passes full validation and executes to the
        same cycle count as the cold compile it replays."""
        cache = MappingCache()
        cold = compile_kernel("fir", FABRIC, "iced", cache=cache)
        warm = compile_kernel("fir", FABRIC, "iced", cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        validate_mapping(warm.mapping)  # independent revalidation
        assert warm.report.ii == cold.report.ii
        sim_cold = simulate_execution(cold.mapping, 25)
        sim_warm = simulate_execution(warm.mapping, 25)
        assert sim_warm.total_cycles == sim_cold.total_cycles
        assert warm.mapping.to_dict() == cold.mapping.to_dict()

    def test_hit_returns_fresh_instance(self):
        cache = MappingCache()
        a = compile_kernel("fir", FABRIC, "iced", cache=cache)
        b = compile_kernel("fir", FABRIC, "iced", cache=cache)
        assert b.mapping is not a.mapping
        assert b.mapping.placements is not a.mapping.placements

    def test_derived_strategies_share_engine_artifact(self):
        cache = MappingCache()
        compile_kernel("fir", FABRIC, "baseline", cache=cache)
        per_tile = compile_kernel("fir", FABRIC, "per_tile_dvfs",
                                  cache=cache)
        gated = compile_kernel("fir", FABRIC, "baseline+gating",
                               cache=cache)
        assert per_tile.cache_hit and gated.cache_hit
        assert len(cache) == 1
        assert per_tile.mapping.strategy == "per_tile_dvfs"

    def test_no_cache_bypasses(self):
        cache = MappingCache()
        compile_kernel("fir", FABRIC, "baseline", cache=cache)
        again = compile_kernel("fir", FABRIC, "baseline", cache=cache,
                               use_cache=False)
        assert not again.cache_hit
        assert cache.stats.hits == 0

    def test_corrupt_artifact_recompiled_cold(self):
        cache = MappingCache()
        cold = compile_kernel("fir", FABRIC, "baseline", cache=cache)
        with cache._lock:
            cache._entries[cold.cache_key] = '{"kernel": "fir"}'
        warm = compile_kernel("fir", FABRIC, "baseline", cache=cache)
        assert not warm.cache_hit
        assert warm.mapping.to_dict() == cold.mapping.to_dict()

    def test_lru_eviction(self):
        cache = MappingCache(max_entries=1)
        a = compile_kernel("fir", FABRIC, "baseline", cache=cache)
        compile_kernel("relu", FABRIC, "baseline", cache=cache)
        assert len(cache) == 1
        assert a.cache_key not in cache
        assert cache.stats.evictions == 1

    def test_allowed_tiles_respected_in_key(self):
        """A tile-restricted compile is never served the whole-fabric
        artifact (and vice versa) — the restriction is in the key."""
        cache = MappingCache()
        dfg = chain_dfg()
        whole = compile_dfg(dfg, FABRIC, "baseline", cache=cache)
        island = FABRIC.islands[0]
        restricted_cfg = EngineConfig(
            allowed_tiles=frozenset(island.tile_ids), max_ii=32,
        )
        restricted = compile_dfg(dfg, FABRIC, "baseline",
                                 restricted_cfg, cache=cache)
        assert not restricted.cache_hit
        assert whole.cache_key != restricted.cache_key
        used = restricted.mapping.tiles_used()
        assert used <= set(island.tile_ids)


class TestFingerprintSensitivity:
    CONFIG = EngineConfig()

    def key(self, dfg=None, cgra=FABRIC, config=None):
        return mapping_cache_key(dfg if dfg is not None else chain_dfg(),
                                 cgra, config or self.CONFIG, "engine")

    def test_dfg_change_changes_key(self):
        assert self.key(chain_dfg(5)) != self.key(chain_dfg(6))

    def test_fabric_change_changes_key(self):
        assert self.key(cgra=CGRA.build(6, 6)) != \
            self.key(cgra=CGRA.build(4, 4))
        assert self.key(cgra=CGRA.build(6, 6, island_shape=(2, 2))) != \
            self.key(cgra=CGRA.build(6, 6, island_shape=(3, 3)))

    def test_config_change_changes_key(self):
        assert self.key(config=EngineConfig(dvfs_aware=True)) != \
            self.key(config=EngineConfig(dvfs_aware=False))
        assert self.key(config=EngineConfig(max_ii=16)) != \
            self.key(config=EngineConfig(max_ii=32))

    @given(
        n_a=st.integers(min_value=3, max_value=8),
        n_b=st.integers(min_value=3, max_value=8),
        opcode=st.sampled_from([Opcode.ADD, Opcode.MUL, Opcode.SUB]),
        dist=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_structure_determines_key(self, n_a, n_b, opcode, dist):
        """Equal structures hash equal; any structural difference
        (length, opcode, dependence distance) changes the key."""
        def make(n, op, d):
            b = DFGBuilder("prop")
            prev = b.op(Opcode.LOAD)
            for i in range(n):
                prev = b.op(op if i == 0 else Opcode.ADD, prev)
            last = b.op(Opcode.STORE, prev)
            if d:
                b.edge(last, prev, dist=d)
            return b.build()

        key_a = self.key(make(n_a, opcode, dist))
        key_b = self.key(make(n_b, opcode, dist))
        twin = self.key(make(n_a, opcode, dist))
        assert key_a == twin
        if n_a != n_b:
            assert key_a != key_b
        assert key_a != self.key(make(n_a, opcode, dist + 1))
        if opcode is not Opcode.ADD:
            assert key_a != self.key(make(n_a, Opcode.ADD, dist))


class TestSeededSearches:
    def test_annealed_seed_comes_from_cache(self):
        cache = MappingCache()
        dfg = load_kernel("fir")
        base, refined = compile_annealed(dfg, FABRIC, moves=50,
                                         cache=cache)
        assert not base.cache_hit
        assert refined.cache_hit  # anneal reuses the baseline artifact
        assert refined.anneal_stats is not None
        assert refined.mapping.ii == base.mapping.ii
        validate_mapping(refined.mapping)
        # a second sweep with a different seed re-uses the same artifact
        _, again = compile_annealed(dfg, FABRIC, moves=50, seed=7,
                                    cache=cache)
        assert again.cache_hit

    def test_exhaustive_bounded_by_cached_heuristic(self):
        b = DFGBuilder("diamond")
        ld = b.op(Opcode.LOAD)
        left = b.op(Opcode.ADD, ld)
        right = b.op(Opcode.MUL, ld)
        join = b.op(Opcode.SUB, left, right)
        b.op(Opcode.STORE, join)
        dfg = b.build()
        fabric = CGRA.build(3, 3, island_shape=(3, 3))
        cache = MappingCache()
        heuristic = compile_dfg(dfg, fabric, "baseline", cache=cache)
        mapping, stats = compile_exhaustive(dfg, fabric, cache=cache)
        validate_mapping(mapping)
        assert mapping.ii <= heuristic.mapping.ii
        assert stats.probes > 0
        assert cache.stats.hits >= 1  # the heuristic bound came cached


class TestInstrumentationReport:
    def test_summarize_aggregates_per_pass(self):
        inst = Instrumentation()
        cache = MappingCache()
        for _ in range(2):
            compile_kernel("relu", FABRIC, "baseline", cache=cache,
                           instrument=inst)
        summary = summarize(inst.events)
        assert summary["place_route"]["calls"] == 2
        assert summary["place_route"]["cache_hit"] == 1
        assert summary["analyze"]["calls"] == 2

    def test_render_report_mentions_passes_and_hit_rate(self):
        inst = Instrumentation()
        cache = MappingCache()
        compile_kernel("relu", FABRIC, "iced", cache=cache,
                       instrument=inst)
        compile_kernel("relu", FABRIC, "iced", cache=cache,
                       instrument=inst)
        text = render_report(inst.events, cache.stats_dict())
        assert "place_route" in text
        assert "refine_islands" in text
        assert "50% hit rate" in text

    def test_render_report_empty(self):
        assert "no compile passes" in render_report([])


class TestSweepHitRate:
    def test_repeated_figure_sweep_mostly_hits(self):
        """A repeated Fig 9-style sweep is served from cache: the
        second pass over (kernels x strategies) must exceed a 50% hit
        rate (acceptance criterion of the pipeline refactor)."""
        cache = MappingCache()
        kernels = ("fir", "relu", "histogram")
        strategies = ("baseline", "per_tile_dvfs", "iced")
        for _ in range(2):
            for name in kernels:
                for strategy in strategies:
                    compile_kernel(name, FABRIC, strategy, cache=cache)
        assert cache.stats.hit_rate() > 0.5
        # engine ran once per (kernel, engine-flavour): baseline and
        # per-tile share one artifact, iced has its own
        assert cache.stats.stores == len(kernels) * 2

    def test_global_cache_is_shared_default(self):
        before = len(get_cache())
        result = compile_kernel("fir", FABRIC, "iced")
        again = compile_kernel("fir", FABRIC, "iced")
        assert again.cache_hit
        assert result.cache_key in get_cache()
        assert len(get_cache()) >= before
