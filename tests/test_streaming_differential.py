"""Property-based differential suite: fast engine vs scalar reference.

Mirrors how the router rewrite was pinned: hypothesis draws random
pipeline apps (stage shapes, iteration models, IIs, island counts),
random integer-feature streams, random windows and block sizes, and
asserts the fast engine's ``StreamResult`` — including every
``WindowStats`` field — and the ICED controller's decision log are
**equal** (``==``, not approximately) to the scalar reference's, for
all three strategies.

The apps use lightweight fake partitions (the engines only consume
``app``/``cgra``/``placements``/``placement_of``/``ii_table``), so the
suite explores far more shapes than the two real applications without
paying for mapping. Iteration models mix dual-use feature arithmetic
(vectorizes as itself) and scalar-only models (row-by-row fallback),
covering both paths of ``KernelStage.iterations_block``.
"""

from dataclasses import asdict

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.streaming import (  # noqa: E402
    DVFSController,
    KernelStage,
    StreamInput,
    StreamingApp,
    blocks_of,
    fast_simulate_drips,
    fast_simulate_static,
    fast_simulate_stream,
    make_scenario,
    scenario_names,
    simulate_drips,
    simulate_static,
    simulate_stream,
    streaming_cgra,
)
from repro.streaming.engine import _VECTOR_WINDOW_MIN  # noqa: E402

CGRA = streaming_cgra()


class FakePlacement:
    def __init__(self, kernel, islands: int, ii: int):
        self.kernel = kernel
        self.island_ids = list(range(islands))
        self.ii = ii
        self._tiles = 2 * islands

    def tile_ids(self, cgra):
        return list(range(self._tiles))


class FakePartition:
    def __init__(self, app, placements, ii_table):
        self.app = app
        self.cgra = CGRA
        self.placements = placements
        self.ii_table = ii_table
        self._by_name = {p.kernel.name: p for p in placements}

    def placement_of(self, name):
        return self._by_name[name]


def _dual_model(scale, offset):
    # Pure feature arithmetic: exact on scalars and on numpy columns,
    # so it serves as its own batch model.
    return lambda item: scale * item.get("x") + offset


def _scalar_only_model(scale):
    # Not expressible as exact column arithmetic (libm pow) — forces
    # the row-by-row fallback in iterations_block.
    return lambda item: item.get("x") ** 1.2 * scale


@st.composite
def scenarios(draw):
    num_stages = draw(st.integers(min_value=1, max_value=4))
    stages = []
    placements = []
    ii_table = {}
    kernel_id = 0
    for _ in range(num_stages):
        width = draw(st.integers(min_value=1, max_value=2))
        stage = []
        for _ in range(width):
            name = f"k{kernel_id}"
            kernel_id += 1
            scale = draw(st.sampled_from([1, 2, 3, 0.5, 1.5]))
            dual = draw(st.booleans())
            if dual:
                offset = draw(st.integers(min_value=0, max_value=16))
                model = _dual_model(scale, offset)
                kernel = KernelStage(name=name, dfg=None,
                                     iteration_model=model,
                                     batch_model=model)
            else:
                kernel = KernelStage(name=name, dfg=None,
                                     iteration_model=_scalar_only_model(
                                         scale))
            stage.append(kernel)
            ii = draw(st.integers(min_value=1, max_value=8))
            islands = draw(st.integers(min_value=1, max_value=2))
            placements.append(FakePlacement(kernel, islands, ii))
            for k in (1, 2, 3):
                ii_table[(name, k)] = max(1, ii + 1 - k)
        stages.append(stage)
    app = StreamingApp(name="fake", stages=stages)
    partition = FakePartition(app, placements, ii_table)

    num_inputs = draw(st.integers(min_value=0, max_value=90))
    xs = draw(st.lists(st.integers(min_value=1, max_value=10**6),
                       min_size=num_inputs, max_size=num_inputs))
    inputs = [StreamInput(i, {"x": float(x)}) for i, x in enumerate(xs)]
    window = draw(st.sampled_from(
        [1, 2, 3, 7, 10, _VECTOR_WINDOW_MIN, 40]))
    block_size = draw(st.sampled_from([1, 2, 5, 13, 8192]))
    return partition, inputs, window, block_size


COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=40, **COMMON)
@given(scenarios())
def test_iced_differential(scenario):
    partition, inputs, window, block_size = scenario
    names = [p.kernel.name for p in partition.placements]
    ref_ctl = DVFSController(dvfs=CGRA.dvfs, kernel_names=names,
                             window=window)
    fast_ctl = DVFSController(dvfs=CGRA.dvfs, kernel_names=names,
                              window=window)
    ref = simulate_stream(partition, inputs, window=window,
                          controller=ref_ctl)
    fast = fast_simulate_stream(partition,
                                blocks_of(inputs, block_size)
                                if inputs else [],
                                window=window, controller=fast_ctl)
    assert asdict(ref) == asdict(fast)
    assert ref_ctl.decisions == fast_ctl.decisions
    assert ref_ctl.levels == fast_ctl.levels
    assert ref_ctl.exe_table == fast_ctl.exe_table


@settings(max_examples=30, **COMMON)
@given(scenarios())
def test_drips_differential(scenario):
    partition, inputs, window, block_size = scenario
    ref = simulate_drips(partition, inputs, window=window)
    fast = fast_simulate_drips(partition,
                               blocks_of(inputs, block_size)
                               if inputs else [],
                               window=window)
    assert asdict(ref) == asdict(fast)


@settings(max_examples=25, **COMMON)
@given(scenarios())
def test_static_differential(scenario):
    partition, inputs, window, block_size = scenario
    ref = simulate_static(partition, inputs, window=window)
    fast = fast_simulate_static(partition,
                                blocks_of(inputs, block_size)
                                if inputs else [],
                                window=window)
    assert asdict(ref) == asdict(fast)


# ---------------------------------------------------------------------------
# Registered traffic scenarios: every scenario's real application and
# real feature stream, fast vs scalar, under arbitrary windows and
# chunkings. The partition stays fake (drawn IIs/island counts) so the
# suite covers all scenario apps without paying for kernel mapping —
# the engines never look past the placement table.


@st.composite
def traffic_cases(draw):
    name = draw(st.sampled_from(scenario_names()))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n = draw(st.integers(min_value=0, max_value=60))
    scenario = make_scenario(name, seed=seed, n=n)
    placements = []
    ii_table = {}
    for kernel in scenario.app.all_kernels():
        ii = draw(st.integers(min_value=1, max_value=8))
        islands = draw(st.integers(min_value=1, max_value=2))
        placements.append(FakePlacement(kernel, islands, ii))
        for k in (1, 2, 3):
            ii_table[(kernel.name, k)] = max(1, ii + 1 - k)
    partition = FakePartition(scenario.app, placements, ii_table)
    window = draw(st.sampled_from([1, 3, 10, _VECTOR_WINDOW_MIN]))
    block_size = draw(st.sampled_from([1, 7, 64, 8192]))
    return scenario, partition, window, block_size


@settings(max_examples=21, **COMMON)
@given(traffic_cases())
def test_scenario_differential_all_strategies(case):
    scenario, partition, window, block_size = case
    inputs = scenario.generate()
    names = [p.kernel.name for p in partition.placements]

    ref_ctl = DVFSController(dvfs=CGRA.dvfs, kernel_names=names,
                             window=window)
    fast_ctl = DVFSController(dvfs=CGRA.dvfs, kernel_names=names,
                              window=window)
    ref = simulate_stream(partition, inputs, window=window,
                          controller=ref_ctl)
    fast = fast_simulate_stream(partition,
                                scenario.feature_blocks(block_size),
                                window=window, controller=fast_ctl)
    assert asdict(ref) == asdict(fast)
    assert ref_ctl.decisions == fast_ctl.decisions
    assert ref_ctl.levels == fast_ctl.levels

    ref = simulate_drips(partition, inputs, window=window)
    fast = fast_simulate_drips(partition,
                               scenario.feature_blocks(block_size),
                               window=window)
    assert asdict(ref) == asdict(fast)

    ref = simulate_static(partition, inputs, window=window)
    fast = fast_simulate_static(partition,
                                scenario.feature_blocks(block_size),
                                window=window)
    assert asdict(ref) == asdict(fast)
