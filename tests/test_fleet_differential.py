"""Differential suite for the batched fleet engine.

The contract under test: for every tenant in a homogeneous group, the
tenant-major batched engine produces a ``StreamResult`` **equal** (by
``asdict``, so every ``WindowStats`` field, float for float) to a
standalone sequential fast-engine run over the same partition and
stream — and therefore a whole ``FleetSim`` report is identical
between ``batched=True`` and the per-tenant reference loop, for every
placement strategy and strategy mix (DRIPS rides the sequential
fallback inside the batched path).

Partitions are the same lightweight fakes the streaming differential
suite uses: the engines only consume ``app``/``cgra``/``placements``/
``placement_of``/``ii_table``, so hypothesis can sweep shapes without
paying for kernel mapping.
"""

from dataclasses import asdict

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.errors import FleetError  # noqa: E402
from repro.fleet import (  # noqa: E402
    FabricInstance,
    FleetSim,
    FleetSpec,
    TenantSpec,
    canonical_report,
    simulate_group_batched,
)

# The built-ins by name, not placement_names(): other test modules
# register throwaway strategies (that e.g. drop tenants on purpose)
# and the registry is process-global.
BUILTIN_PLACEMENTS = ("random", "load_balanced", "topology_aware")
from repro.streaming import (  # noqa: E402
    KernelStage,
    StreamInput,
    StreamingApp,
    blocks_of,
    fast_simulate_static,
    fast_simulate_stream,
    make_scenario,
    streaming_cgra,
)
from repro.streaming.engine import _VECTOR_WINDOW_MIN  # noqa: E402

CGRA = streaming_cgra()

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])


class FakePlacement:
    def __init__(self, kernel, islands: int, ii: int):
        self.kernel = kernel
        self.island_ids = list(range(islands))
        self.ii = ii
        self._tiles = 2 * islands

    def tile_ids(self, cgra):
        return list(range(self._tiles))


class FakePartition:
    def __init__(self, app, placements, ii_table):
        self.app = app
        self.cgra = CGRA
        self.placements = placements
        self.ii_table = ii_table
        self._by_name = {p.kernel.name: p for p in placements}

    def placement_of(self, name):
        return self._by_name[name]


def _dual_model(scale, offset):
    return lambda item: scale * item.get("x") + offset


def _scalar_only_model(scale):
    return lambda item: item.get("x") ** 1.2 * scale


def _fake_partition_for(app, draw):
    placements = []
    ii_table = {}
    for kernel in app.all_kernels():
        ii = draw(st.integers(min_value=1, max_value=8))
        islands = draw(st.integers(min_value=1, max_value=2))
        placements.append(FakePlacement(kernel, islands, ii))
        for k in (1, 2, 3):
            ii_table[(kernel.name, k)] = max(1, ii + 1 - k)
    return FakePartition(app, placements, ii_table)


@st.composite
def group_cases(draw):
    """A fake app plus T same-length integer-feature tenant streams."""
    num_stages = draw(st.integers(min_value=1, max_value=3))
    stages = []
    placements = []
    ii_table = {}
    kernel_id = 0
    for _ in range(num_stages):
        width = draw(st.integers(min_value=1, max_value=2))
        stage = []
        for _ in range(width):
            name = f"k{kernel_id}"
            kernel_id += 1
            scale = draw(st.sampled_from([1, 2, 3, 0.5, 1.5]))
            if draw(st.booleans()):
                offset = draw(st.integers(min_value=0, max_value=16))
                model = _dual_model(scale, offset)
                kernel = KernelStage(name=name, dfg=None,
                                     iteration_model=model,
                                     batch_model=model)
            else:
                kernel = KernelStage(
                    name=name, dfg=None,
                    iteration_model=_scalar_only_model(scale))
            stage.append(kernel)
            ii = draw(st.integers(min_value=1, max_value=8))
            islands = draw(st.integers(min_value=1, max_value=2))
            placements.append(FakePlacement(kernel, islands, ii))
            for k in (1, 2, 3):
                ii_table[(name, k)] = max(1, ii + 1 - k)
        stages.append(stage)
    app = StreamingApp(name="fake", stages=stages)
    partition = FakePartition(app, placements, ii_table)

    num_tenants = draw(st.integers(min_value=1, max_value=4))
    num_inputs = draw(st.integers(min_value=1, max_value=60))
    tenant_inputs = []
    for _ in range(num_tenants):
        xs = draw(st.lists(st.integers(min_value=1, max_value=10**6),
                           min_size=num_inputs, max_size=num_inputs))
        tenant_inputs.append(
            [StreamInput(i, {"x": float(x)}) for i, x in enumerate(xs)]
        )
    window = draw(st.sampled_from([1, 3, 10, _VECTOR_WINDOW_MIN]))
    block_size = draw(st.sampled_from([1, 5, 13, 8192]))
    return partition, tenant_inputs, window, block_size


@settings(max_examples=40, **COMMON)
@given(group_cases(), st.sampled_from(["iced", "static"]))
def test_batched_group_equals_sequential_runs(case, strategy):
    partition, tenant_inputs, window, block_size = case
    sequential_fn = (fast_simulate_stream if strategy == "iced"
                     else fast_simulate_static)
    batched = simulate_group_batched(
        partition,
        [blocks_of(inputs, block_size) for inputs in tenant_inputs],
        window, strategy=strategy,
    )
    assert batched.num_tenants == len(tenant_inputs)
    for t, inputs in enumerate(tenant_inputs):
        sequential = sequential_fn(
            partition, blocks_of(inputs, block_size), window=window)
        assert asdict(batched.tenant_result(t)) == asdict(sequential)


@st.composite
def real_scenario_groups(draw):
    """T tenants of one registered scenario (distinct seeds), with a
    drawn fake partition over the scenario's real app."""
    name = draw(st.sampled_from(
        ["enzyme", "bursty", "diurnal", "trace_fleet"]))
    num_tenants = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=1, max_value=50))
    seeds = draw(st.lists(st.integers(min_value=0, max_value=2**16),
                          min_size=num_tenants, max_size=num_tenants,
                          unique=True))
    scenarios = [make_scenario(name, seed=seed, n=n) for seed in seeds]
    partition = _fake_partition_for(scenarios[0].app, draw)
    window = draw(st.sampled_from([1, 10, _VECTOR_WINDOW_MIN]))
    return partition, scenarios, window


@settings(max_examples=25, **COMMON)
@given(real_scenario_groups(), st.sampled_from(["iced", "static"]))
def test_real_scenario_group_equals_sequential_runs(case, strategy):
    partition, scenarios, window = case
    sequential_fn = (fast_simulate_stream if strategy == "iced"
                     else fast_simulate_static)
    batched = simulate_group_batched(
        partition, [s.feature_blocks() for s in scenarios],
        window, strategy=strategy,
    )
    for t, scenario in enumerate(scenarios):
        sequential = sequential_fn(partition, scenario.feature_blocks(),
                                   window=window)
        assert asdict(batched.tenant_result(t)) == asdict(sequential)


# -- whole-fleet identity -----------------------------------------------------


@st.composite
def fleet_cases(draw):
    """A mixed-scenario, mixed-strategy fleet with fake partitions for
    every app it touches."""
    num_tenants = draw(st.integers(min_value=2, max_value=8))
    num_fabrics = draw(st.integers(min_value=1, max_value=4))
    placement = draw(st.sampled_from(BUILTIN_PLACEMENTS))
    window = draw(st.sampled_from([5, 10, _VECTOR_WINDOW_MIN]))
    inputs = draw(st.integers(min_value=5, max_value=40))
    scenario_mix = draw(st.lists(
        st.sampled_from(["enzyme", "bursty", "diurnal", "trace_fleet"]),
        min_size=1, max_size=3, unique=True))
    strategy_mix = draw(st.lists(
        st.sampled_from(["iced", "static", "drips"]),
        min_size=1, max_size=3, unique=True))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    tenants = [
        TenantSpec(
            tenant_id=f"t{i:05d}",
            scenario=scenario_mix[i % len(scenario_mix)],
            seed=seed + i, inputs=inputs, window=window,
            strategy=strategy_mix[i % len(strategy_mix)],
        )
        for i in range(num_tenants)
    ]
    failed = draw(st.sets(st.integers(0, num_fabrics - 1),
                          max_size=max(0, num_fabrics - 1)))
    fabrics = [FabricInstance(fabric_id=i, failed=i in failed)
               for i in range(num_fabrics)]
    spec = FleetSpec(tenants=tenants, fabrics=fabrics,
                     placement=placement, seed=seed)
    partitions = {}
    for tenant in tenants:
        scenario = make_scenario(tenant.scenario, seed=tenant.seed, n=4)
        if scenario.app.name not in partitions:
            partitions[scenario.app.name] = _fake_partition_for(
                scenario.app, draw)
    return spec, partitions


@settings(max_examples=20, **COMMON)
@given(fleet_cases())
def test_fleet_report_batched_equals_reference(case):
    spec, partitions = case
    batched = FleetSim(spec, partitions=partitions).run(batched=True)
    reference = FleetSim(spec, partitions=partitions).run(batched=False)
    assert canonical_report(batched) == canonical_report(reference)
    assert batched["stats"]["batched"] is True
    assert reference["stats"]["fallback_runs"] == len(spec.tenants)


# -- engine error paths -------------------------------------------------------


def _tiny_partition():
    kernel = KernelStage(name="k0", dfg=None,
                         iteration_model=_dual_model(1, 0),
                         batch_model=_dual_model(1, 0))
    app = StreamingApp(name="fake", stages=[[kernel]])
    return FakePartition(app, [FakePlacement(kernel, 1, 2)],
                         {("k0", k): 2 for k in (1, 2, 3)})


def _inputs(n):
    return [StreamInput(i, {"x": 1.0}) for i in range(n)]


class TestBatchedEngineErrors:
    def test_empty_group_is_an_error(self):
        with pytest.raises(FleetError, match="empty tenant group"):
            simulate_group_batched(_tiny_partition(), [], 10)

    def test_mismatched_stream_lengths_are_an_error(self):
        with pytest.raises(FleetError, match="different window grid"):
            simulate_group_batched(
                _tiny_partition(),
                [blocks_of(_inputs(10), 5), blocks_of(_inputs(7), 5)],
                10,
            )

    def test_unbatchable_strategy_is_an_error(self):
        with pytest.raises(FleetError, match="cannot batch"):
            simulate_group_batched(
                _tiny_partition(), [blocks_of(_inputs(4), 2)], 10,
                strategy="drips",
            )

    def test_bad_window_is_an_error(self):
        with pytest.raises(FleetError, match="window"):
            simulate_group_batched(
                _tiny_partition(), [blocks_of(_inputs(4), 2)], 0)
