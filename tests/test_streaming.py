"""Tests for the streaming subsystem: workloads, apps, controller,
partitioner, engine and the DRIPS baseline.

Partitioning is expensive (it maps kernels repeatedly), so the module
shares one partition per app via module-scoped fixtures on a reduced
input set.
"""

import pytest

from repro.arch.dvfs import DEFAULT_DVFS_CONFIG
from repro.errors import PartitionError
from repro.streaming import (
    DVFSController,
    EnzymeGraphStream,
    SparseMatrixStream,
    StreamInput,
    gcn_app,
    lu_app,
    partition_app,
    simulate_drips,
    simulate_stream,
    streaming_cgra,
)
from repro.streaming.partitioner import _snake_island_order, build_ii_table


@pytest.fixture(scope="module")
def fabric():
    return streaming_cgra()


@pytest.fixture(scope="module")
def gcn_inputs():
    return EnzymeGraphStream(num_graphs=60, seed=3).generate()


@pytest.fixture(scope="module")
def gcn_partition(fabric, gcn_inputs):
    return partition_app(gcn_app(), fabric, gcn_inputs[:20])


class TestWorkloads:
    def test_enzyme_statistics(self):
        inputs = EnzymeGraphStream(num_graphs=300, seed=1).generate()
        degrees = [i.get("degree") for i in inputs]
        assert all(2 <= d <= 126 for d in degrees)
        mean = sum(degrees) / len(degrees)
        assert 20 <= mean <= 50  # published mean 32.6

    def test_enzyme_deterministic(self):
        a = EnzymeGraphStream(num_graphs=10, seed=5).generate()
        b = EnzymeGraphStream(num_graphs=10, seed=5).generate()
        assert [i.features for i in a] == [i.features for i in b]

    def test_sparse_matrix_bounds(self):
        inputs = SparseMatrixStream(num_matrices=100, seed=2).generate()
        for item in inputs:
            n = item.get("n")
            assert 16 <= n <= 100
            assert item.get("nnz") >= n

    def test_indices_sequential(self):
        inputs = SparseMatrixStream(num_matrices=5).generate()
        assert [i.index for i in inputs] == [0, 1, 2, 3, 4]


class TestApps:
    def test_gcn_shape(self):
        app = gcn_app()
        assert app.num_stages == 6
        names = [k.name for k in app.all_kernels()]
        assert names.count("aggregate.l1") == 1
        assert names.count("aggregate.l2") == 1
        assert app.preferred_islands() == 9

    def test_lu_shape(self):
        app = lu_app()
        assert app.num_stages == 4
        assert len(app.stages[2]) == 2  # parallel solvers
        assert app.preferred_islands() == 9

    def test_iteration_models_positive(self):
        app = gcn_app()
        item = StreamInput(0, {"n_nodes": 10.0, "degree": 5.0,
                               "nnz": 50.0, "features": 16.0})
        for kernel in app.all_kernels():
            assert kernel.iterations(item) >= 1


class TestController:
    def make(self, names=("a", "b", "c")):
        return DVFSController(dvfs=DEFAULT_DVFS_CONFIG,
                              kernel_names=list(names))

    def test_starts_at_normal(self):
        ctrl = self.make()
        assert all(lv.name == "normal" for lv in ctrl.levels.values())

    def test_bottleneck_stays_fast_others_lower(self):
        ctrl = self.make()
        ctrl.record_execution("a", 1000.0)
        ctrl.record_execution("b", 100.0)
        ctrl.record_execution("c", 100.0)
        ctrl.end_of_window()
        assert ctrl.level_of("a").name == "normal"  # already fastest
        assert ctrl.level_of("b").name == "relax"
        assert ctrl.level_of("c").name == "relax"

    def test_headroom_guard(self):
        ctrl = self.make(("a", "b"))
        ctrl.record_execution("a", 1000.0)
        ctrl.record_execution("b", 900.0)  # slowing b would exceed a
        ctrl.end_of_window()
        assert ctrl.level_of("b").name == "normal"

    def test_bottleneck_raised_back(self):
        ctrl = self.make(("a", "b"))
        # Window 1: b idles, gets lowered.
        ctrl.record_execution("a", 1000.0)
        ctrl.record_execution("b", 10.0)
        ctrl.end_of_window()
        assert ctrl.level_of("b").name == "relax"
        # Window 2: b became the bottleneck; it must be raised.
        ctrl.record_execution("a", 100.0)
        ctrl.record_execution("b", 2000.0)
        ctrl.end_of_window()
        assert ctrl.level_of("b").name == "normal"

    def test_empty_window_noop(self):
        ctrl = self.make()
        ctrl.end_of_window()
        assert not ctrl.decisions

    def test_exe_table_resets(self):
        ctrl = self.make(("a", "b"))
        ctrl.record_execution("a", 10.0)
        ctrl.record_execution("b", 5.0)
        ctrl.end_of_window()
        assert all(v == 0.0 for v in ctrl.exe_table.values())
        assert len(ctrl.decisions) == 1
        assert ctrl.decisions[0]["_bottleneck"] == "a"


class TestPartitioner:
    def test_snake_order_adjacency(self, fabric):
        order = _snake_island_order(fabric)
        assert sorted(order) == list(range(9))
        # Consecutive islands in the snake are grid-adjacent.
        per_row = 3
        for a, b in zip(order, order[1:]):
            ra, ca = a // per_row, a % per_row
            rb, cb = b // per_row, b % per_row
            assert abs(ra - rb) + abs(ca - cb) == 1

    def test_partition_covers_each_kernel(self, gcn_partition):
        app = gcn_app()
        assert len(gcn_partition.placements) == len(app.all_kernels())
        for placement in gcn_partition.placements:
            assert placement.island_ids
            assert placement.mapping.ii >= 1

    def test_islands_disjoint(self, gcn_partition):
        seen = []
        for placement in gcn_partition.placements:
            seen.extend(placement.island_ids)
        assert len(seen) == len(set(seen))
        assert gcn_partition.islands_used() <= 9

    def test_mappings_stay_inside_allocation(self, gcn_partition, fabric):
        for placement in gcn_partition.placements:
            allowed = set(placement.tile_ids(fabric))
            used = {
                p.tile for p in placement.mapping.placements.values()
            }
            assert used <= allowed

    def test_placement_lookup(self, gcn_partition):
        assert gcn_partition.placement_of("compress").kernel.name == \
            "compress"
        with pytest.raises(PartitionError):
            gcn_partition.placement_of("ghost")

    def test_ii_table_shape(self, fabric, gcn_inputs):
        table = build_ii_table(gcn_app(), fabric, max_islands_per_kernel=2)
        assert all(count in (1, 2) for (_n, count) in table)
        feasible = [ii for ii in table.values() if ii is not None]
        assert feasible

    def test_too_many_kernels_rejected(self, gcn_inputs):
        tiny = streaming_cgra(2, 2)  # a single 2x2 island
        with pytest.raises(PartitionError):
            partition_app(gcn_app(), tiny, gcn_inputs[:5])


class TestEngine:
    def test_iced_runs_and_accounts(self, gcn_partition, gcn_inputs):
        result = simulate_stream(gcn_partition, gcn_inputs[20:60], window=10)
        assert result.strategy == "iced"
        assert result.inputs == 40
        assert result.makespan_cycles > 0
        assert result.total_energy_uj > 0
        assert len(result.windows) == 4
        assert sum(w.inputs for w in result.windows) == 40

    def test_windows_are_contiguous(self, gcn_partition, gcn_inputs):
        result = simulate_stream(gcn_partition, gcn_inputs[20:60], window=10)
        for prev, cur in zip(result.windows, result.windows[1:]):
            assert cur.start_cycle == prev.end_cycle
        assert result.windows[-1].end_cycle == result.makespan_cycles

    def test_power_below_all_normal_bound(self, gcn_partition, gcn_inputs):
        result = simulate_stream(gcn_partition, gcn_inputs[20:60])
        # 36 tiles at normal + controllers + SRAM is a hard upper bound.
        assert 0 < result.average_power_mw < 220

    def test_drips_runs(self, gcn_partition, gcn_inputs):
        result = simulate_drips(gcn_partition, gcn_inputs[20:60], window=10)
        assert result.strategy == "drips"
        assert result.makespan_cycles > 0
        levels = {
            level for w in result.windows for level in w.levels.values()
        }
        assert levels == {"normal"}  # DRIPS never scales V/f

    def test_iced_saves_power_vs_drips(self, gcn_partition, gcn_inputs):
        iced = simulate_stream(gcn_partition, gcn_inputs[20:60])
        drips = simulate_drips(gcn_partition, gcn_inputs[20:60])
        assert iced.average_power_mw < drips.average_power_mw

    def test_throughput_not_collapsed(self, gcn_partition, gcn_inputs):
        iced = simulate_stream(gcn_partition, gcn_inputs[20:60])
        drips = simulate_drips(gcn_partition, gcn_inputs[20:60])
        assert iced.makespan_cycles <= 1.5 * drips.makespan_cycles

    def test_deterministic(self, gcn_partition, gcn_inputs):
        a = simulate_stream(gcn_partition, gcn_inputs[20:60])
        b = simulate_stream(gcn_partition, gcn_inputs[20:60])
        assert a.makespan_cycles == b.makespan_cycles
        assert a.total_energy_uj == pytest.approx(b.total_energy_uj)


class TestStaticBaseline:
    def test_static_runs_at_normal(self, gcn_partition, gcn_inputs):
        from repro.streaming import simulate_static
        result = simulate_static(gcn_partition, gcn_inputs[20:60])
        assert result.strategy == "static"
        levels = {
            level for w in result.windows for level in w.levels.values()
        }
        assert levels == {"normal"}

    def test_drips_not_slower_than_static(self, gcn_partition, gcn_inputs):
        from repro.streaming import simulate_drips, simulate_static
        static = simulate_static(gcn_partition, gcn_inputs[20:60])
        drips = simulate_drips(gcn_partition, gcn_inputs[20:60])
        assert drips.makespan_cycles <= static.makespan_cycles * 1.02

    def test_iced_beats_static_perf_per_watt(self, gcn_partition,
                                             gcn_inputs):
        from repro.streaming import simulate_static, simulate_stream
        static = simulate_static(gcn_partition, gcn_inputs[20:60])
        iced = simulate_stream(gcn_partition, gcn_inputs[20:60])
        assert iced.perf_per_watt() > static.perf_per_watt()


class TestLUApplication:
    """The LU pipeline exercises parallel kernels within a stage."""

    @pytest.fixture(scope="class")
    def lu_setup(self, fabric):
        inputs = SparseMatrixStream(num_matrices=40, seed=9).generate()
        partition = partition_app(lu_app(), fabric, inputs[:12],
                                  max_islands_per_kernel=2)
        return partition, inputs[12:]

    def test_partition_fits(self, lu_setup, fabric):
        partition, _ = lu_setup
        assert partition.islands_used() <= len(fabric.islands)
        assert len(partition.placements) == 6

    def test_parallel_stage_kernels_both_run(self, lu_setup):
        partition, run_inputs = lu_setup
        result = simulate_stream(partition, run_inputs)
        assert result.inputs == len(run_inputs)
        # Both solvers appear in every window's level map.
        for window in result.windows:
            assert "solver0" in window.levels
            assert "solver1" in window.levels

    def test_iced_beats_drips_perf_per_watt_on_lu(self, lu_setup):
        partition, run_inputs = lu_setup
        iced = simulate_stream(partition, run_inputs)
        drips = simulate_drips(partition, run_inputs)
        assert iced.perf_per_watt() > drips.perf_per_watt() * 0.98
