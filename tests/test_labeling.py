"""Tests for Algorithm 1 (LabelDVFSLevel)."""

from repro.arch import CGRA, NORMAL, RELAX, REST
from repro.dfg import DFGBuilder, Opcode
from repro.mapper.labeling import label_dvfs_levels


class TestLabeling:
    def test_critical_cycle_labeled_normal(self, fig1, cgra44):
        labels = label_dvfs_levels(fig1, cgra44, ii=4)
        names = {fig1.node(n).label: labels[n] for n in fig1.node_ids()}
        for node in ("n1", "n4", "n7", "n9"):
            assert names[node] is NORMAL

    def test_short_cycle_labeled_relax(self, fig1, cgra44):
        labels = label_dvfs_levels(fig1, cgra44, ii=4)
        names = {fig1.node(n).label: labels[n] for n in fig1.node_ids()}
        # The 2-node cycle is at most half the 4-node one.
        assert names["n10"] is RELAX
        assert names["n11"] is RELAX

    def test_slack_nodes_labeled_rest_with_capacity(self, fig1, cgra44):
        labels = label_dvfs_levels(fig1, cgra44, ii=4)
        names = {fig1.node(n).label: labels[n] for n in fig1.node_ids()}
        grey = [names[n] for n in ("n2", "n3", "n5", "n6", "n8")]
        assert all(level is REST for level in grey)

    def test_every_node_labeled(self, fig1, cgra44):
        labels = label_dvfs_levels(fig1, cgra44, ii=4)
        assert set(labels) == set(fig1.node_ids())

    def test_capacity_exhaustion_falls_back_to_normal(self):
        # A big acyclic graph on a tiny fabric at a tiny II: the slot
        # budget cannot hold everything at rest (4 slots each), so
        # later nodes must be labeled relax and finally normal.
        b = DFGBuilder("big")
        prev = b.op(Opcode.LOAD)
        for _ in range(30):
            prev = b.op(Opcode.ADD, prev)
        dfg = b.build()
        tiny = CGRA.build(2, 2)
        labels = label_dvfs_levels(dfg, tiny, ii=2)
        kinds = {level.name for level in labels.values()}
        assert "normal" in kinds  # fallback engaged
        budget = tiny.num_tiles * 2 * 0.9
        # The slow (rest/relax) labels must respect the slot budget;
        # normal labels are the unconditional fallback beyond it.
        slow_slots = sum(
            level.slowdown for level in labels.values()
            if level.slowdown > 1
        )
        assert slow_slots <= budget

    def test_cycle_exactly_half_is_relax(self, cgra44):
        b = DFGBuilder("half")
        b.recurrence([Opcode.PHI] + [Opcode.ADD] * 5)  # length 6
        short = b.recurrence([Opcode.PHI, Opcode.ADD, Opcode.ADD])  # 3 <= 3
        dfg = b.build()
        labels = label_dvfs_levels(dfg, cgra44, ii=6)
        assert all(labels[n] is RELAX for n in short)

    def test_two_level_config(self):
        from repro.arch.dvfs import scaled_config
        cgra = CGRA.build(4, 4, dvfs=scaled_config(2))
        b = DFGBuilder("t")
        nodes = b.recurrence([Opcode.PHI] + [Opcode.ADD] * 3)
        ld = b.op(Opcode.LOAD)
        b.edge(ld, nodes[0])
        dfg = b.build()
        labels = label_dvfs_levels(dfg, cgra, ii=4)
        assert all(lv in cgra.dvfs.levels for lv in labels.values())

    def test_single_level_config_all_normal(self):
        from repro.arch.dvfs import scaled_config
        cgra = CGRA.build(4, 4, dvfs=scaled_config(1))
        b = DFGBuilder("t")
        b.recurrence([Opcode.PHI, Opcode.ADD])
        dfg = b.build()
        labels = label_dvfs_levels(dfg, cgra, ii=4)
        assert all(lv is cgra.dvfs.normal for lv in labels.values())
