"""Tests for multi-cycle FU support (the paper's APEX-style extension)."""

import pytest

from repro.arch import CGRA
from repro.arch.fu import FunctionalUnit, memory_fu, universal_fu
from repro.dfg import DFGBuilder, Opcode
from repro.errors import ArchitectureError
from repro.mapper import map_baseline, map_dvfs_aware, validate_mapping
from repro.mapper.timing import compute_timing
from repro.sim import simulate_execution

DIV4 = {Opcode.DIV: 4, Opcode.SQRT: 6}


def divider_kernel():
    b = DFGBuilder("divk")
    a = b.op(Opcode.LOAD)
    c = b.op(Opcode.LOAD)
    q = b.op(Opcode.DIV, a, c)
    r = b.op(Opcode.ADD, q, a)
    b.op(Opcode.STORE, r)
    return b.build()


class TestFunctionalUnitLatency:
    def test_default_single_cycle(self):
        fu = universal_fu()
        assert fu.latency(Opcode.ADD) == 1
        assert fu.latency(Opcode.DIV) == 1

    def test_exceptions_table(self):
        fu = universal_fu(DIV4)
        assert fu.latency(Opcode.DIV) == 4
        assert fu.latency(Opcode.SQRT) == 6
        assert fu.latency(Opcode.ADD) == 1

    def test_memory_fu_latencies(self):
        fu = memory_fu({Opcode.LOAD: 2})
        assert fu.latency(Opcode.LOAD) == 2

    def test_invalid_latency_rejected(self):
        with pytest.raises(ArchitectureError):
            FunctionalUnit("bad", frozenset({Opcode.DIV}),
                           ((Opcode.DIV, 0),))

    def test_cgra_exposes_latency(self):
        cgra = CGRA.build(4, 4, op_latencies=DIV4)
        assert cgra.op_latency(0, Opcode.DIV) == 4
        assert cgra.op_latency(5, Opcode.ADD) == 1


class TestMultiCycleMapping:
    def test_baseline_maps_and_validates(self):
        cgra = CGRA.build(4, 4, op_latencies=DIV4)
        mapping = map_baseline(divider_kernel(), cgra)
        report = validate_mapping(mapping)
        assert report.ii == mapping.ii

    def test_div_occupies_four_slots(self):
        cgra = CGRA.build(4, 4, op_latencies=DIV4)
        mapping = map_baseline(divider_kernel(), cgra)
        div_node = next(
            n.id for n in mapping.dfg.nodes() if n.opcode is Opcode.DIV
        )
        placement = mapping.placements[div_node]
        report = compute_timing(mapping)
        # The div's tile must be busy for at least 4 distinct slots
        # (its own occupancy; II >= 4 follows).
        assert report.tile_busy[placement.tile] >= min(4, mapping.ii)

    def test_consumer_waits_for_multicycle_result(self):
        cgra = CGRA.build(4, 4, op_latencies=DIV4)
        mapping = map_baseline(divider_kernel(), cgra)
        dfg = mapping.dfg
        div_node = next(
            n.id for n in dfg.nodes() if n.opcode is Opcode.DIV
        )
        add_node = next(
            n.id for n in dfg.nodes() if n.opcode is Opcode.ADD
        )
        div_p = mapping.placements[div_node]
        add_p = mapping.placements[add_node]
        assert add_p.time >= div_p.time + 4

    def test_dvfs_aware_with_multicycle(self):
        cgra = CGRA.build(6, 6, op_latencies=DIV4)
        mapping = map_dvfs_aware(divider_kernel(), cgra)
        validate_mapping(mapping)
        # A slowed DIV stretches to latency * slowdown base cycles.
        div_node = next(
            n.id for n in mapping.dfg.nodes() if n.opcode is Opcode.DIV
        )
        tile = mapping.placements[div_node].tile
        duration = 4 * mapping.slowdown(tile)
        assert mapping.ii >= min(duration, 4)

    def test_simulation_counts_stretched_busy(self):
        cgra = CGRA.build(4, 4, op_latencies=DIV4)
        mapping = map_baseline(divider_kernel(), cgra)
        stats = simulate_execution(mapping, 64)
        div_node = next(
            n.id for n in mapping.dfg.nodes() if n.opcode is Opcode.DIV
        )
        tile = mapping.placements[div_node].tile
        assert stats.tile_busy_cycles[tile] >= 4 * 64

    def test_single_cycle_config_unchanged(self, baseline_fig1):
        # Default fabrics keep latency-1 behaviour: fig1's mapping is
        # the same with and without an empty latency table.
        cgra = CGRA.build(4, 4, op_latencies={})
        remapped = map_baseline(baseline_fig1.dfg, cgra)
        assert remapped.ii == baseline_fig1.ii
