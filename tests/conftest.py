"""Shared fixtures. Mapping runs are session-scoped: they are the
expensive part, and many tests interrogate the same mapping."""

from __future__ import annotations

import pytest

from repro.arch import CGRA
from repro.frontend import lower_kernel
from repro.kernels import fig1_kernel, load_kernel
from repro.kernels.programs import fir_program
from repro.mapper import (
    assign_per_tile_dvfs,
    map_baseline,
    map_dvfs_aware,
)
from repro.mapper.timing import compute_timing


@pytest.fixture(scope="session")
def cgra44() -> CGRA:
    return CGRA.build(4, 4, island_shape=(2, 2))


@pytest.fixture(scope="session")
def cgra66() -> CGRA:
    return CGRA.build(6, 6, island_shape=(2, 2))


@pytest.fixture(scope="session")
def fig1():
    return fig1_kernel()


@pytest.fixture(scope="session")
def fir_dfg():
    return load_kernel("fir", 1)


@pytest.fixture(scope="session")
def fir_lowered():
    return lower_kernel(fir_program(n=16, taps=4), flatten=True)


@pytest.fixture(scope="session")
def baseline_fig1(fig1, cgra44):
    return map_baseline(fig1, cgra44)


@pytest.fixture(scope="session")
def iced_fig1(fig1, cgra44):
    return map_dvfs_aware(fig1, cgra44)


@pytest.fixture(scope="session")
def baseline_fir(fir_dfg, cgra66):
    return map_baseline(fir_dfg, cgra66)


@pytest.fixture(scope="session")
def iced_fir(fir_dfg, cgra66):
    return map_dvfs_aware(fir_dfg, cgra66)


@pytest.fixture(scope="session")
def per_tile_fir(baseline_fir):
    return assign_per_tile_dvfs(baseline_fir)


@pytest.fixture(scope="session")
def fir_report(baseline_fir):
    return compute_timing(baseline_fir)
