"""Property-based tests (hypothesis) on the core data structures.

These target the invariants everything else leans on: transactional
resource accounting, the difference-constraint scheduler, graph
transforms, the synthesizer's exactness, and frontend semantic
equivalence across randomized kernel parameters.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import CGRA
from repro.dfg import DFG, Opcode, rec_mii, unroll
from repro.dfg.analysis import recurrence_cycles, topo_order
from repro.errors import DFGError, MappingError
from repro.frontend import lower_kernel, run_kernel_ast, run_lowered_dfg
from repro.kernels.programs import fir_program
from repro.kernels.synthesis import synthesize_dfg
from repro.mapper.schedule import modulo_schedule_times
from repro.mrrg.resources import ModuloResourcePool, fu_key, reg_key

CGRA44 = CGRA.build(4, 4)


# -- resource pool -----------------------------------------------------------

claims = st.lists(
    st.tuples(
        st.sampled_from([fu_key(0), fu_key(1), reg_key(0), reg_key(1)]),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=1, max_value=6),
    ),
    min_size=1, max_size=12,
)


class TestPoolProperties:
    @given(claims=claims, ii=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_rollback_restores_exactly(self, claims, ii):
        pool = ModuloResourcePool(CGRA44, ii)
        committed = []
        for key, start, length in claims[: len(claims) // 2]:
            try:
                pool.claim(key, start, length)
                committed.append((key, start, length))
            except MappingError:
                pass
        snapshot = pool.usage_snapshot()
        epoch = pool.epoch
        token = pool.checkpoint()
        for key, start, length in claims[len(claims) // 2:]:
            try:
                pool.claim(key, start, length)
            except MappingError:
                pass
        pool.rollback(token)
        assert pool.usage_snapshot() == snapshot
        assert pool.epoch == epoch

    @given(claims=claims, ii=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_is_free_predicts_claim(self, claims, ii):
        pool = ModuloResourcePool(CGRA44, ii)
        for key, start, length in claims:
            free = pool.is_free(key, start, length)
            try:
                pool.claim(key, start, length)
                succeeded = True
            except MappingError:
                succeeded = False
            assert free == succeeded

    @given(claims=claims, ii=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_usage_never_exceeds_capacity(self, claims, ii):
        pool = ModuloResourcePool(CGRA44, ii)
        for key, start, length in claims:
            try:
                pool.claim(key, start, length)
            except MappingError:
                pass
        for (key, _slot), used in pool.usage_snapshot().items():
            assert used <= pool.capacity(key)


# -- random DFGs ----------------------------------------------------------------


@st.composite
def random_dfg(draw):
    """A random valid DFG: a DAG skeleton plus optional back edges."""
    num_nodes = draw(st.integers(min_value=2, max_value=14))
    dfg = DFG(name="rand")
    for _ in range(num_nodes):
        dfg.add_node(Opcode.ADD)
    # Forward edges (i -> j with i < j) keep dist-0 acyclic; cap
    # in-degree at the ADD arity of 2.
    indeg = {n: 0 for n in range(num_nodes)}
    pair_count = draw(st.integers(min_value=1, max_value=num_nodes * 2))
    for _ in range(pair_count):
        i = draw(st.integers(min_value=0, max_value=num_nodes - 2))
        j = draw(st.integers(min_value=i + 1, max_value=num_nodes - 1))
        if indeg[j] < 2:
            dfg.add_edge(i, j)
            indeg[j] += 1
    # A couple of loop-carried recurrences (through fresh PHIs so node
    # arity stays respected).
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        src = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        phi = dfg.add_node(Opcode.PHI)
        if indeg[src] < 2:
            dfg.add_edge(phi, src, dist=0)
            indeg[src] += 1
        dfg.add_edge(src, phi, dist=draw(st.integers(1, 3)))
    dfg.validate()
    return dfg


class TestDFGProperties:
    @given(dfg=random_dfg())
    @settings(max_examples=50, deadline=None)
    def test_topo_order_is_topological(self, dfg):
        order = topo_order(dfg)
        position = {n: i for i, n in enumerate(order)}
        assert sorted(order) == dfg.node_ids()
        for edge in dfg.edges():
            if edge.dist == 0:
                assert position[edge.src] < position[edge.dst]

    @given(dfg=random_dfg(), factor=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_unroll_scales_and_validates(self, dfg, factor):
        u = unroll(dfg, factor)
        u.validate()
        assert u.num_nodes == dfg.num_nodes * factor
        assert u.num_edges == dfg.num_edges * factor

    @given(dfg=random_dfg(), ii=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_schedule_times_satisfy_constraints(self, dfg, ii):
        times = modulo_schedule_times(dfg, ii, lambda n: 1)
        cycles = recurrence_cycles(dfg)
        feasible = all(c.mii <= ii for c in cycles)
        if not feasible:
            assert times is None
            return
        assert times is not None
        for edge in dfg.edges():
            assert times[edge.dst] + edge.dist * ii >= times[edge.src] + 1

    @given(dfg=random_dfg(), ii=st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_rec_mii_matches_cycle_bound(self, dfg, ii):
        cycles = recurrence_cycles(dfg)
        if cycles:
            assert rec_mii(dfg) == max(c.mii for c in cycles)
            assert rec_mii(dfg) == max(
                math.ceil(c.length / c.distance) for c in cycles
            )
        else:
            assert rec_mii(dfg) == 1


# -- synthesizer ------------------------------------------------------------------


class TestSynthesizerProperties:
    @given(
        nodes=st.integers(min_value=12, max_value=60),
        extra_edges=st.integers(min_value=4, max_value=18),
        mii=st.sampled_from([4, 5, 7, 8, 12]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_statistics_or_explicit_failure(self, nodes, extra_edges,
                                                  mii, seed):
        if nodes < mii + 4:
            return
        edges = nodes + extra_edges
        try:
            dfg = synthesize_dfg("prop", nodes, edges, mii, seed=seed)
        except DFGError:
            return  # infeasible combinations must fail loudly, not warp
        from repro.dfg import dfg_stats
        stats = dfg_stats(dfg)
        assert (stats.nodes, stats.edges, stats.rec_mii) == \
            (nodes, edges, mii)
        dfg.validate()


# -- mapper ---------------------------------------------------------------------


@st.composite
def mappable_dfg(draw):
    """A random DFG with loads/stores, suitable for the mapper."""
    from repro.dfg import DFGBuilder

    b = DFGBuilder("randmap")
    num_loads = draw(st.integers(min_value=1, max_value=2))
    loads = [b.op(Opcode.LOAD) for _ in range(num_loads)]
    frontier = list(loads)
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["unary", "binary"]))
        if kind == "unary" or len(frontier) < 2:
            src = frontier[draw(st.integers(0, len(frontier) - 1))]
            node = b.op(Opcode.ABS, src)
        else:
            i = draw(st.integers(0, len(frontier) - 1))
            j = draw(st.integers(0, len(frontier) - 1))
            node = b.op(Opcode.ADD, frontier[i], frontier[j])
        frontier.append(node)
    if draw(st.booleans()):
        phi, add = b.recurrence([Opcode.PHI, Opcode.ADD])
        b.edge(frontier[-1], phi)
        frontier.append(add)
    b.op(Opcode.STORE, frontier[-1])
    return b.build()


class TestMapperProperties:
    @given(dfg=mappable_dfg())
    @settings(max_examples=20, deadline=None)
    def test_baseline_mapping_validates(self, dfg):
        from repro.mapper import map_baseline, validate_mapping

        try:
            mapping = map_baseline(dfg, CGRA44)
        except MappingError:
            return  # a failure must be explicit, never a bad mapping
        validate_mapping(mapping)

    @given(dfg=mappable_dfg())
    @settings(max_examples=15, deadline=None)
    def test_iced_mapping_validates_and_gates(self, dfg):
        from repro.mapper import map_dvfs_aware, validate_mapping

        try:
            mapping = map_dvfs_aware(dfg, CGRA44)
        except MappingError:
            return
        validate_mapping(mapping)
        # Gated islands never host work.
        used = mapping.tiles_used()
        for tile in mapping.gated_tiles():
            assert tile not in used


# -- frontend ---------------------------------------------------------------------


class TestFrontendProperties:
    @given(
        n=st.integers(min_value=2, max_value=12),
        taps=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=25, deadline=None)
    def test_fir_lowering_equivalence(self, n, taps, seed):
        from repro.utils.rng import make_rng
        kernel = fir_program(n=n, taps=taps)
        rng = make_rng(seed)
        mem = {
            name: rng.normal(size=size).tolist()
            for name, size in kernel.arrays.items()
        }
        expected = run_kernel_ast(kernel, mem)
        lowered = lower_kernel(kernel, flatten=True)
        actual = run_lowered_dfg(lowered, mem)
        assert actual.memory["y"] == pytest.approx(expected["y"])
