"""Tests for configuration-word (bitstream) generation."""

import json

import pytest

from repro.kernels import load_kernel
from repro.mapper import map_dvfs_aware
from repro.mapper.bitstream import (
    Bitstream,
    PortName,
    generate_bitstream,
)


@pytest.fixture(scope="module")
def fir_bitstream(baseline_fir):
    return generate_bitstream(baseline_fir)


class TestStructure:
    def test_one_word_per_tile_per_slot(self, fir_bitstream, baseline_fir):
        assert set(fir_bitstream.words) == {
            t.id for t in baseline_fir.cgra.tiles
        }
        for slots in fir_bitstream.words.values():
            assert len(slots) == baseline_fir.ii

    def test_every_op_issued_once(self, fir_bitstream, baseline_fir):
        issued = sum(
            1 for slots in fir_bitstream.words.values()
            for word in slots if word.opcode is not None
        )
        assert issued == len(baseline_fir.placements)

    def test_issue_slot_matches_placement(self, fir_bitstream,
                                          baseline_fir):
        for node, placement in baseline_fir.placements.items():
            slot = placement.time % baseline_fir.ii
            word = fir_bitstream.words[placement.tile][slot]
            assert word.opcode is baseline_fir.dfg.node(node).opcode
            assert word.node == node

    def test_operand_count_matches_inputs(self, fir_bitstream,
                                          baseline_fir):
        for node, placement in baseline_fir.placements.items():
            slot = placement.time % baseline_fir.ii
            word = fir_bitstream.words[placement.tile][slot]
            expected = len(baseline_fir.dfg.in_edges(node))
            assert len(word.operands) == expected

    def test_one_send_per_hop(self, fir_bitstream, baseline_fir):
        total_hops = sum(
            len(r.path) - 1 for r in baseline_fir.routes.values()
        )
        total_sends = sum(
            len(word.sends) for slots in fir_bitstream.words.values()
            for word in slots
        )
        assert total_sends == total_hops

    def test_sends_target_neighbours(self, fir_bitstream, baseline_fir):
        cgra = baseline_fir.cgra
        for tile_id, slots in fir_bitstream.words.items():
            for word in slots:
                for send in word.sends:
                    assert send.to_tile in cgra.neighbors(tile_id)
                    assert send.delay >= 1

    def test_out_edges_cover_routed_fanout(self, fir_bitstream,
                                           baseline_fir):
        edges = baseline_fir.dfg.edges()
        for node, placement in baseline_fir.placements.items():
            slot = placement.time % baseline_fir.ii
            word = fir_bitstream.words[placement.tile][slot]
            expected = {
                idx for idx, e in enumerate(edges)
                if e.src == node and idx in baseline_fir.routes
            }
            assert set(word.out_edges) == expected

    def test_phi_operands_carry_distance(self, fir_bitstream,
                                         baseline_fir):
        phis = [
            w for slots in fir_bitstream.words.values() for w in slots
            if w.opcode is not None and w.opcode.name == "PHI"
        ]
        assert phis
        for word in phis:
            assert any(
                sel.kind == "phi" and sel.dist >= 1
                for sel in word.operands
            )

    def test_gated_tiles_idle(self, cgra66):
        mapping = map_dvfs_aware(load_kernel("relu", 1), cgra66)
        bitstream = generate_bitstream(mapping)
        for tile in mapping.gated_tiles():
            assert all(word.is_idle for word in bitstream.words[tile])

    def test_levels_recorded(self, cgra66):
        mapping = map_dvfs_aware(load_kernel("relu", 1), cgra66)
        bitstream = generate_bitstream(mapping)
        assert set(bitstream.levels) == {i.id for i in cgra66.islands}
        names = set(bitstream.levels.values())
        assert names <= {"normal", "relax", "rest", "power_gated"}


class TestSerialization:
    def test_json_round_trip(self, fir_bitstream):
        payload = json.loads(fir_bitstream.to_json())
        assert payload["kernel"] == "fir"
        assert payload["ii"] == fir_bitstream.ii
        assert len(payload["tiles"]) == 36

    def test_words_used_counts_non_idle(self, fir_bitstream):
        used = fir_bitstream.words_used()
        assert 0 < used <= 36 * fir_bitstream.ii

    def test_send_ports_valid(self, fir_bitstream):
        valid = {p.value for p in PortName}
        for slots in fir_bitstream.words.values():
            for word in slots:
                for send in word.sends:
                    assert send.to_port in valid


class TestDeterminism:
    def test_same_mapping_same_bitstream(self, baseline_fir):
        a = generate_bitstream(baseline_fir).to_json()
        b = generate_bitstream(baseline_fir).to_json()
        assert a == b

    def test_iced_bitstream_generates(self, iced_fir):
        bitstream = generate_bitstream(iced_fir)
        assert isinstance(bitstream, Bitstream)
        assert bitstream.ii == iced_fir.ii
