"""Tests for the observability layer: spans, metrics, sinks, merging.

This file is covered by CI's ``ruff format --check`` gate — keep it
formatter-clean.
"""

import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.arch.cgra import CGRA
from repro.arch.dvfs import DEFAULT_DVFS_CONFIG
from repro.compile import SweepExecutor, SweepItem
from repro.obs.sinks import CORE_CATEGORIES, SIM_PID, WALL_PID
from repro.streaming import (
    KernelStage,
    StreamingApp,
    StreamInput,
    fast_simulate_stream,
    simulate_stream,
    streaming_cgra,
)
from repro.streaming.controller import DVFSController


@pytest.fixture
def tracer():
    t = obs.install_tracer()
    yield t
    obs.uninstall_tracer()


@pytest.fixture
def registry():
    fresh = obs.MetricsRegistry()
    previous = obs.set_metrics(fresh)
    yield fresh
    obs.set_metrics(previous)


class TestTracer:
    def test_nesting_and_parent_ids(self, tracer):
        with obs.span("outer", category="pipeline") as outer:
            with obs.span("inner", category="mapper") as inner:
                assert inner.parent_id == outer.span_id
        spans = {s.name: s for s in tracer.spans}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].span_id != spans["outer"].span_id

    def test_children_recorded_before_parents(self, tracer):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_span_timing_and_attrs(self, tracer):
        with obs.span("work", category="sim", kernel="fir") as span:
            span.set(ii=4)
        (recorded,) = tracer.spans
        assert recorded.dur_ns > 0
        assert recorded.attrs == {"kernel": "fir", "ii": 4}
        assert recorded.track == obs.WALL_TRACK

    def test_add_span_logical_track(self, tracer):
        span = tracer.add_span(
            "window[0]",
            category="streaming",
            start_ns=5000,
            dur_ns=2000,
            track=obs.SIM_TRACK,
            inputs=10,
        )
        assert span.start_ns == 5000
        assert span.track == obs.SIM_TRACK
        assert tracer.categories() == {"streaming"}

    def test_roundtrip_dicts(self, tracer):
        with obs.span("a", category="pipeline", k=1):
            pass
        restored = obs.Span.from_dict(tracer.to_dicts()[0])
        assert restored == tracer.spans[0]


class TestDisabledTracing:
    def test_span_is_shared_noop(self):
        assert obs.current_tracer() is None
        ctx = obs.span("anything", category="pipeline", x=1)
        with ctx as span:
            span.set(ii=4)
            assert not span
        assert obs.span("other") is ctx

    def test_null_span_is_falsy(self):
        assert bool(obs.NULL_SPAN) is False


class TestAdopt:
    def test_remaps_ids_and_reparents(self, tracer):
        worker = obs.Tracer()
        with worker.span("child", category="mapper"):
            pass
        with worker.span("parent", category="pipeline"):
            pass
        worker.spans[0].parent_id = worker.spans[1].span_id

        with obs.span("sweep", category="executor") as root:
            adopted = tracer.adopt(worker.to_dicts())
        by_name = {s.name: s for s in adopted}
        assert by_name["child"].parent_id == by_name["parent"].span_id
        assert by_name["parent"].parent_id == root.span_id
        assert len({s.span_id for s in tracer.spans}) == len(tracer.spans)

    def test_orphans_attach_to_explicit_parent(self, tracer):
        worker = obs.Tracer()
        with worker.span("alone"):
            pass
        (span,) = tracer.adopt(worker.to_dicts(), parent_id=None)
        assert span.parent_id is None


class TestMetrics:
    def test_counter_gauge_histogram(self, registry):
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        registry.gauge("g").set(7.0)
        registry.histogram("h").observe(3.0)
        registry.histogram("h").observe(999.0)
        snap = registry.snapshot()
        assert snap["c"]["value"] == 3.5
        assert snap["g"]["value"] == 7.0
        assert snap["h"]["count"] == 2
        assert snap["h"]["sum"] == 1002.0

    def test_absorb_prefixes_counters(self, registry):
        registry.absorb("pipeline.place_route", {"routes": 4, "ii": 2})
        assert registry.counters() == {
            "pipeline.place_route.routes": 4.0,
            "pipeline.place_route.ii": 2.0,
        }

    def test_merge_adds_counters_and_histograms(self, registry):
        other = obs.MetricsRegistry()
        other.counter("c").inc(2)
        other.gauge("g").set(1.0)
        other.histogram("h").observe(10.0)
        registry.counter("c").inc(1)
        registry.merge(other.snapshot())
        registry.merge(other.snapshot())
        assert registry.counters()["c"] == 5.0
        assert registry.snapshot()["h"]["count"] == 2
        assert registry.snapshot()["g"]["value"] == 1.0


class TestNormalizeAndSinks:
    def _record(self, tracer):
        with obs.span("compile", category="pipeline"):
            with obs.span("attempt", category="mapper", ii=4):
                pass
        tracer.add_span(
            "window[0]",
            category="streaming",
            start_ns=0,
            dur_ns=1000,
            track=obs.SIM_TRACK,
        )

    def test_normalize_depth_and_filter(self, tracer):
        self._record(tracer)
        rows = obs.normalize_spans(tracer)
        by_name = {r["name"]: r for r in rows}
        assert by_name["compile"]["depth"] == 0
        assert by_name["attempt"]["depth"] == 1
        only = obs.normalize_spans(tracer, categories=("mapper",))
        assert [r["name"] for r in only] == ["attempt"]

    def test_jsonl_sink(self, tracer, registry, tmp_path):
        self._record(tracer)
        registry.counter("sim.runs").inc()
        path = tmp_path / "trace.jsonl"
        lines = obs.write_jsonl(str(path), tracer, registry)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == lines == 4
        assert {r["type"] for r in records} == {"span", "counter"}

    def test_chrome_sink_two_process_rows(self, tracer, registry, tmp_path):
        self._record(tracer)
        registry.counter("sim.runs").inc(3)
        path = tmp_path / "trace.json"
        count = obs.write_chrome_trace(str(path), tracer, registry)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == count
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == {WALL_PID, SIM_PID}
        wall = [e for e in xs if e["pid"] == WALL_PID]
        assert min(e["ts"] for e in wall) == 0.0
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and counters[0]["args"]["value"] == 3.0

    def test_write_trace_dispatches_on_extension(self, tracer, tmp_path):
        self._record(tracer)
        obs.write_trace(str(tmp_path / "t.jsonl"), tracer)
        obs.write_trace(str(tmp_path / "t.json"), tracer)
        assert (tmp_path / "t.jsonl").read_text().startswith("{")
        chrome = json.loads((tmp_path / "t.json").read_text())
        assert "traceEvents" in chrome


class TestControllerEdgeCases:
    def make(self, names):
        return DVFSController(dvfs=DEFAULT_DVFS_CONFIG, kernel_names=list(names))

    def test_empty_window_makes_no_decision(self):
        ctrl = self.make(["a", "b"])
        ctrl.end_of_window()
        assert ctrl.decisions == []
        assert all(lv.name == "normal" for lv in ctrl.levels.values())

    def test_all_idle_window_traces_idle_span(self, tracer):
        ctrl = self.make(["a"])
        ctrl.end_of_window()
        (span,) = tracer.spans
        assert span.name == "dvfs_decision"
        assert span.attrs["outcome"] == "idle"
        assert ctrl.decisions == []

    def test_single_kernel_app_stays_at_normal(self):
        ctrl = self.make(["only"])
        ctrl.record_execution("only", 500.0)
        ctrl.end_of_window()
        # The lone kernel is its own bottleneck: it must never be
        # slowed, and normal is already the fastest level.
        assert ctrl.level_of("only").name == "normal"
        assert ctrl.decisions[0]["_bottleneck"] == "only"
        assert all(v == 0.0 for v in ctrl.exe_table.values())

    def test_decision_span_carries_inputs(self, tracer):
        ctrl = self.make(["a", "b"])
        ctrl.record_execution("a", 900.0)
        ctrl.record_execution("b", 100.0)
        ctrl.end_of_window()
        decision = next(s for s in tracer.spans if s.name == "dvfs_decision")
        assert decision.attrs["outcome"] == "adjusted"
        assert decision.attrs["bottleneck"] == "a"
        assert decision.attrs["busy_cycles"] == {"a": 900.0, "b": 100.0}
        assert decision.attrs["levels"]["b"] == "relax"


class _StreamPlacement:
    def __init__(self, kernel, ii):
        self.kernel = kernel
        self.island_ids = [0]
        self.ii = ii

    def tile_ids(self, cgra):
        return [0, 1]


class _StreamPartition:
    def __init__(self, app, placements):
        self.app = app
        self.cgra = streaming_cgra()
        self.placements = placements
        self._by_name = {p.kernel.name: p for p in placements}

    def placement_of(self, name):
        return self._by_name[name]


def _tiny_partition():
    kernel = KernelStage(
        name="k0",
        dfg=None,
        iteration_model=lambda item: 2 * item.get("x"),
    )
    app = StreamingApp(name="tiny", stages=[[kernel]])
    return _StreamPartition(app, [_StreamPlacement(kernel, ii=2)])


class TestStreamingMetrics:
    """Satellite: ``streaming.inputs_per_sec`` gauge and the per-window
    ``streaming.decision_latency_ms`` histogram, on both engines."""

    def _run(self, simulate, registry):
        partition = _tiny_partition()
        inputs = [
            StreamInput(index=i, features={"x": float(3 + i % 5)})
            for i in range(25)
        ]
        result = simulate(partition, inputs, window=5)
        return result, registry.snapshot()

    def test_reference_engine_reports_throughput(self, registry):
        result, snap = self._run(simulate_stream, registry)
        assert len(result.windows) == 5
        assert snap["streaming.inputs_per_sec"]["value"] > 0
        assert snap["streaming.inputs"]["value"] == 25.0
        hist = snap["streaming.decision_latency_ms"]
        assert hist["count"] == len(result.windows)
        assert hist["sum"] >= 0.0

    def test_fast_engine_reports_throughput(self, registry):
        result, snap = self._run(fast_simulate_stream, registry)
        assert len(result.windows) == 5
        assert snap["streaming.inputs_per_sec"]["value"] > 0
        assert snap["streaming.windows"]["value"] == 5.0
        hist = snap["streaming.decision_latency_ms"]
        assert hist["count"] == len(result.windows)

    def test_engines_observe_same_window_count(self, registry):
        _, reference = self._run(simulate_stream, registry)
        fresh = obs.MetricsRegistry()
        previous = obs.set_metrics(fresh)
        try:
            _, fast = self._run(fast_simulate_stream, fresh)
        finally:
            obs.set_metrics(previous)
        assert (
            reference["streaming.decision_latency_ms"]["count"]
            == fast["streaming.decision_latency_ms"]["count"]
        )


class TestScenarioMetrics:
    """Satellite: the ``scenario`` span carries ``streaming.scenario``
    and the envelope harness emits per-scenario energy/latency gauges."""

    def _fake_partition(self, app):
        placements = [_StreamPlacement(k, ii=2) for k in app.all_kernels()]
        partition = _StreamPartition(app, placements)
        partition.ii_table = {
            (k.name, islands): 2 for k in app.all_kernels() for islands in (1, 2, 3)
        }
        return partition

    def _envelope(self):
        from repro.streaming import make_scenario, scenario_envelope

        app = make_scenario("branchy", n=30).app
        return scenario_envelope(
            "branchy", inputs=30, partition=self._fake_partition(app)
        )

    def test_scenario_span_attribute(self, tracer, registry):
        self._envelope()
        span = next(s for s in tracer.spans if s.name == "scenario")
        assert span.category == "streaming"
        assert span.attrs["streaming.scenario"] == "branchy"
        assert span.attrs["streaming.inputs"] == 30

    def test_per_scenario_energy_and_latency_gauges(self, tracer, registry):
        envelope = self._envelope()
        snap = registry.snapshot()
        assert snap["streaming.energy_mj"]["value"] > 0
        assert snap["streaming.p99_latency"]["value"] > 0
        for strategy in ("iced", "drips", "static"):
            energy = snap[f"streaming.energy_mj.branchy.{strategy}"]["value"]
            p99 = snap[f"streaming.p99_latency.branchy.{strategy}"]["value"]
            entry = envelope["strategies"][strategy]
            assert energy == pytest.approx(entry["energy_uj"] / 1e3)
            assert p99 == pytest.approx(entry["p99_latency_cycles"])


class TestParallelTraceMerge:
    KERNELS = ("fir", "relu")

    def _traced_sweep(self, jobs):
        cgra = CGRA.build(6, 6, island_shape=(2, 2))
        tracer = obs.install_tracer()
        previous = obs.set_metrics(obs.MetricsRegistry())
        try:
            executor = SweepExecutor(jobs=jobs)
            items = [SweepItem(kernel=name, strategy="iced") for name in self.KERNELS]
            outcomes = executor.run(items, cgra)
        finally:
            registry = obs.set_metrics(previous)
            obs.uninstall_tracer()
        assert all(o.ok for o in outcomes)
        return tracer, registry

    def test_jobs2_span_content_equals_jobs1(self):
        serial_tracer, serial_registry = self._traced_sweep(1)
        pool_tracer, pool_registry = self._traced_sweep(2)
        serial = obs.normalize_spans(serial_tracer, CORE_CATEGORIES)
        pool = obs.normalize_spans(pool_tracer, CORE_CATEGORIES)
        assert serial == pool
        assert len({s.span_id for s in pool_tracer.spans}) == len(pool_tracer.spans)

    def test_jobs2_counters_equal_jobs1(self):
        _, serial_registry = self._traced_sweep(1)
        _, pool_registry = self._traced_sweep(2)
        serial = {
            k: v
            for k, v in serial_registry.counters().items()
            if not k.startswith("executor.")
        }
        pool = {
            k: v
            for k, v in pool_registry.counters().items()
            if not k.startswith("executor.")
        }
        assert serial == pool


class TestCLI:
    def test_map_trace_flag_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "map.json"
        code = main(["map", "fir", "--no-cache", "--trace", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        cats = {e["cat"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"pipeline", "mapper"} <= cats

    def test_trace_subcommand_covers_four_categories(self, tmp_path, capsys):
        out = tmp_path / "full.json"
        code = main(
            [
                "trace",
                "fir",
                "-o",
                str(out),
                "--iterations",
                "8",
                "--inputs",
                "10",
                "--window",
                "5",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        cats = {e["cat"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert set(CORE_CATEGORIES) <= cats
        stdout = capsys.readouterr().out
        assert "trace:" in stdout

    def test_cache_stats_empty_dir_message(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert main(["cache", "stats", "--dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "no cache here yet" in out

    def test_cache_gc_empty_dir_message(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert main(["cache", "gc", "--dir", str(missing)]) == 0
        assert "no cache here yet" in capsys.readouterr().out
