"""Tests for the power, energy, SRAM and area models."""

import pytest

from repro.arch import CGRA, NORMAL, POWER_GATED, RELAX, REST
from repro.errors import ArchitectureError
from repro.power import SRAMModel, area_report, energy_uj, mapping_power
from repro.power.model import (
    DEFAULT_POWER_PARAMS,
    level_tile_power_mw,
    tile_power_mw,
)


class TestTilePower:
    def test_calibration_matches_paper_fabric(self):
        # 36 tiles + 9 island controllers at nominal ~ 113.95 mW.
        params = DEFAULT_POWER_PARAMS
        tiles = 36 * tile_power_mw(params, 0.7, 434.0, activity=1.0)
        controllers = (
            9 * params.controller_mw() * params.island_controller_scale
        )
        assert tiles + controllers == pytest.approx(113.95, rel=0.03)

    def test_levels_monotone(self):
        params = DEFAULT_POWER_PARAMS
        p = [level_tile_power_mw(params, lv)
             for lv in (NORMAL, RELAX, REST, POWER_GATED)]
        assert p[0] > p[1] > p[2] > p[3] >= 0.0

    def test_activity_scales_dynamic(self):
        params = DEFAULT_POWER_PARAMS
        busy = tile_power_mw(params, 0.7, 434.0, activity=1.0)
        idle = tile_power_mw(params, 0.7, 434.0, activity=0.0)
        assert idle < busy
        # The idle tile still burns the clock floor + leakage.
        floor = (params.clock_floor_fraction
                 * tile_power_mw(params, 0.7, 434.0, 1.0, static=False))
        assert idle == pytest.approx(floor + params.static_at_nominal_mw)

    def test_activity_clamped(self):
        params = DEFAULT_POWER_PARAMS
        assert tile_power_mw(params, 0.7, 434.0, activity=2.0) == \
            tile_power_mw(params, 0.7, 434.0, activity=1.0)

    def test_gated_residual_tiny(self):
        params = DEFAULT_POWER_PARAMS
        residual = level_tile_power_mw(params, POWER_GATED)
        assert residual < 0.05 * level_tile_power_mw(params, NORMAL)

    def test_per_tile_controller_over_30_percent(self):
        params = DEFAULT_POWER_PARAMS
        tile = tile_power_mw(params, 0.7, 434.0)
        assert params.controller_mw() >= 0.30 * tile


class TestMappingPower:
    def test_report_components(self, baseline_fir):
        report = mapping_power(baseline_fir)
        assert report.tiles_mw > 0
        assert report.dvfs_overhead_mw == 0.0  # baseline has no DVFS HW
        assert report.sram_mw > 0
        assert report.total_mw == pytest.approx(
            report.tiles_mw + report.sram_mw
        )

    def test_per_tile_charges_all_controllers(self, per_tile_fir):
        report = mapping_power(per_tile_fir)
        expected = DEFAULT_POWER_PARAMS.controller_mw() * 36
        assert report.dvfs_overhead_mw == pytest.approx(expected)

    def test_iced_charges_island_controllers(self, iced_fir):
        report = mapping_power(iced_fir)
        expected = (
            DEFAULT_POWER_PARAMS.controller_mw()
            * DEFAULT_POWER_PARAMS.island_controller_scale * 9
        )
        assert report.dvfs_overhead_mw == pytest.approx(expected)

    def test_iced_cheaper_than_baseline(self, baseline_fir, iced_fir):
        assert mapping_power(iced_fir).total_mw < \
            mapping_power(baseline_fir).total_mw

    def test_energy_equation(self, baseline_fir):
        report = mapping_power(baseline_fir)
        assert energy_uj(report, 1000.0) == pytest.approx(
            report.total_mw, rel=1e-9
        )

    def test_to_dict(self, baseline_fir):
        d = mapping_power(baseline_fir).to_dict()
        assert d["strategy"] == "baseline"
        assert d["total_mw"] > 0


class TestSRAM:
    def test_paper_calibration(self):
        sram = SRAMModel()
        assert sram.area_mm2() == pytest.approx(0.559, rel=0.01)
        assert sram.power_mw(434.0, 1.0) == pytest.approx(62.653, rel=0.01)

    def test_leakage_scales_with_banks(self):
        assert SRAMModel(num_banks=16).leakage_mw() == \
            2 * SRAMModel(num_banks=8).leakage_mw()

    def test_dynamic_scales_with_activity(self):
        sram = SRAMModel()
        assert sram.dynamic_mw(434.0, 0.5) == \
            pytest.approx(0.5 * sram.dynamic_mw(434.0, 1.0))

    def test_activity_bounds(self):
        with pytest.raises(ArchitectureError):
            SRAMModel().dynamic_mw(434.0, 1.5)

    def test_bigger_sram_bigger_area(self):
        assert SRAMModel(size_bytes=64 * 1024).area_mm2() > \
            SRAMModel(size_bytes=32 * 1024).area_mm2()

    def test_invalid_parameters(self):
        with pytest.raises(ArchitectureError):
            SRAMModel(size_bytes=0)


class TestArea:
    def test_fabric_calibration(self, cgra66):
        report = area_report(cgra66, dvfs_style="island")
        fabric = report.total_mm2 - report.components_mm2["sram"]
        assert fabric == pytest.approx(6.63, rel=0.01)

    def test_per_tile_dvfs_costs_more(self, cgra66):
        island = area_report(cgra66, dvfs_style="island")
        per_tile = area_report(cgra66, dvfs_style="per_tile")
        none = area_report(cgra66, dvfs_style="none")
        assert per_tile.total_mm2 > island.total_mm2 > none.total_mm2

    def test_per_tile_overhead_over_30_percent(self, cgra66):
        per_tile = area_report(cgra66, dvfs_style="per_tile",
                               include_sram=False)
        none = area_report(cgra66, dvfs_style="none", include_sram=False)
        overhead = per_tile.total_mm2 / none.total_mm2 - 1
        assert overhead >= 0.30

    def test_rows_sorted_descending(self, cgra66):
        rows = area_report(cgra66).rows()
        areas = [r[1] for r in rows]
        assert areas == sorted(areas, reverse=True)

    def test_unknown_style_rejected(self, cgra66):
        with pytest.raises(ValueError):
            area_report(cgra66, dvfs_style="quantum")

    def test_scales_with_fabric(self):
        small = area_report(CGRA.build(4, 4), include_sram=False)
        large = area_report(CGRA.build(8, 8), include_sram=False)
        assert large.total_mm2 > 3 * small.total_mm2
