"""Tests for the fabric: tiles, mesh, islands, SPM wiring."""

import pytest

from repro.arch import CGRA, ScratchpadMemory
from repro.arch.islands import Island, island_lookup, partition_islands
from repro.dfg.ops import Opcode
from repro.errors import ArchitectureError, IslandConfigError


class TestBuild:
    def test_tile_count_and_ids(self, cgra66):
        assert cgra66.num_tiles == 36
        assert [t.id for t in cgra66.tiles] == list(range(36))

    def test_row_major_coordinates(self, cgra66):
        t = cgra66.tile(8)
        assert (t.x, t.y) == (2, 1)
        assert cgra66.tile_at(2, 1).id == 8

    def test_memory_column(self, cgra66):
        assert cgra66.memory_tile_ids() == [0, 6, 12, 18, 24, 30]
        assert cgra66.tile(0).has_memory_access
        assert not cgra66.tile(1).has_memory_access

    def test_custom_memory_columns(self):
        cgra = CGRA.build(4, 4, memory_columns=(0, 3))
        mems = cgra.memory_tile_ids()
        assert 3 in mems and 0 in mems and 1 not in mems

    def test_bad_memory_column(self):
        with pytest.raises(ArchitectureError):
            CGRA.build(4, 4, memory_columns=(9,))

    def test_minimum_size(self):
        with pytest.raises(ArchitectureError):
            CGRA.build(0, 4)

    def test_can_execute(self, cgra66):
        assert cgra66.can_execute(0, Opcode.LOAD)
        assert not cgra66.can_execute(1, Opcode.LOAD)
        assert cgra66.can_execute(1, Opcode.MUL)


class TestTopology:
    def test_corner_neighbors(self, cgra44):
        assert set(cgra44.neighbors(0)) == {1, 4}

    def test_center_neighbors(self, cgra44):
        assert set(cgra44.neighbors(5)) == {1, 4, 6, 9}

    def test_links_are_directed_pairs(self, cgra44):
        links = {(lk.src, lk.dst) for lk in cgra44.links()}
        assert (0, 1) in links and (1, 0) in links
        assert (0, 5) not in links  # no diagonals

    def test_link_count(self, cgra44):
        # 2 * (rows*(cols-1) + cols*(rows-1)) directed links.
        assert len(cgra44.links()) == 2 * (4 * 3 + 4 * 3)

    def test_manhattan_distance(self, cgra44):
        assert cgra44.distance(0, 15) == 6
        assert cgra44.distance(5, 5) == 0
        assert cgra44.distance(1, 4) == 2

    def test_bad_tile_raises(self, cgra44):
        with pytest.raises(ArchitectureError):
            cgra44.tile(99)
        with pytest.raises(ArchitectureError):
            cgra44.tile_at(7, 7)


class TestIslands:
    def test_default_partition(self, cgra66):
        assert len(cgra66.islands) == 9
        assert all(i.num_tiles == 4 for i in cgra66.islands)

    def test_island_of(self, cgra66):
        assert cgra66.island_of(0).id == 0
        assert cgra66.island_of(7).id == 0
        assert cgra66.island_of(2).id == 1
        assert cgra66.island_of(35).id == 8

    def test_islands_cover_fabric_disjointly(self, cgra66):
        seen = [t for isl in cgra66.islands for t in isl.tile_ids]
        assert sorted(seen) == list(range(36))

    def test_with_islands(self, cgra66):
        per_tile = cgra66.with_islands((1, 1))
        assert len(per_tile.islands) == 36
        assert all(i.num_tiles == 1 for i in per_tile.islands)

    def test_irregular_islands(self):
        # 3x3 islands on an 8x8 fabric: the paper's irregular case.
        islands = partition_islands(8, 8, 3, 3)
        assert sum(i.num_tiles for i in islands) == 64
        sizes = sorted(i.num_tiles for i in islands)
        assert sizes[0] < 9 and sizes[-1] == 9
        assert not all(i.is_regular for i in islands)

    def test_island_shape_name(self, cgra66):
        assert cgra66.island_shape_name == "2x2"

    def test_partition_validation(self):
        with pytest.raises(IslandConfigError):
            partition_islands(4, 4, 5, 5)
        with pytest.raises(IslandConfigError):
            partition_islands(0, 4, 1, 1)

    def test_duplicate_tile_rejected(self):
        bad = [Island(0, (0, 1), 2, 1), Island(1, (1, 2), 2, 1)]
        with pytest.raises(IslandConfigError):
            island_lookup(bad)


class TestSPM:
    def test_defaults(self):
        spm = ScratchpadMemory()
        assert spm.size_bytes == 32 * 1024
        assert spm.num_banks == 8
        assert spm.num_words == 8192
        assert spm.words_per_bank == 1024

    def test_bank_interleaving(self):
        spm = ScratchpadMemory()
        assert spm.bank_of(0) == 0
        assert spm.bank_of(7) == 7
        assert spm.bank_of(8) == 0

    def test_out_of_range(self):
        spm = ScratchpadMemory()
        with pytest.raises(ArchitectureError):
            spm.bank_of(-1)
        with pytest.raises(ArchitectureError):
            spm.bank_of(8192)

    def test_fits(self):
        spm = ScratchpadMemory()
        assert spm.fits(32 * 1024)
        assert not spm.fits(32 * 1024 + 1)
        assert not spm.fits(-1)

    def test_invalid_parameters(self):
        with pytest.raises(ArchitectureError):
            ScratchpadMemory(size_bytes=0)
        with pytest.raises(ArchitectureError):
            ScratchpadMemory(size_bytes=100, num_banks=3)


class TestBankConflicts:
    def test_conflict_counting(self):
        from repro.arch.spm import BankConflictTracker
        tracker = BankConflictTracker(ScratchpadMemory())
        tracker.begin_cycle()
        assert not tracker.access(0, is_write=False)
        assert tracker.access(8, is_write=False)  # same bank, same cycle
        assert not tracker.access(0, is_write=True)  # write port separate
        assert tracker.conflicts == 1
        tracker.begin_cycle()
        assert not tracker.access(16, is_write=False)  # new cycle resets
        assert tracker.conflict_rate == pytest.approx(1 / 4)
