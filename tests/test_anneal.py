"""Tests for the simulated-annealing refinement mapper."""

import pytest

from repro.arch import CGRA
from repro.kernels import load_kernel
from repro.mapper import map_baseline, validate_mapping
from repro.mapper.anneal import AnnealStats, _cost, anneal_mapping


@pytest.fixture(scope="module")
def base():
    return map_baseline(load_kernel("histogram", 1), CGRA.build(6, 6))


class TestAnneal:
    def test_result_validates_and_keeps_ii(self, base):
        refined, stats = anneal_mapping(base, moves=300, seed=1)
        validate_mapping(refined)
        assert refined.ii == base.ii
        assert isinstance(stats, AnnealStats)

    def test_never_worsens_cost(self, base):
        refined, stats = anneal_mapping(base, moves=300, seed=2)
        assert _cost(refined) <= _cost(base)
        assert stats.final_cost <= stats.initial_cost

    def test_deterministic_per_seed(self, base):
        a, stats_a = anneal_mapping(base, moves=200, seed=7)
        b, stats_b = anneal_mapping(base, moves=200, seed=7)
        assert a.to_dict() == b.to_dict()
        assert stats_a.moves_accepted == stats_b.moves_accepted

    def test_seed_changes_walk(self, base):
        _, stats_a = anneal_mapping(base, moves=200, seed=1)
        _, stats_b = anneal_mapping(base, moves=200, seed=2)
        assert (stats_a.moves_tried, stats_a.moves_accepted) != \
            (stats_b.moves_tried, stats_b.moves_accepted) or \
            stats_a.final_cost != stats_b.final_cost

    def test_zero_moves_is_identity(self, base):
        refined, stats = anneal_mapping(base, moves=0, seed=0)
        assert refined.to_dict() == base.to_dict()
        assert stats.moves_tried == 0

    def test_semantics_preserved_under_refinement(self):
        # The refined mapping of a real kernel must still compute the
        # reference results (co-simulation closes the loop).
        from repro.frontend import lower_kernel, run_kernel_ast
        from repro.kernels.programs import fir_program
        from repro.sim.cosim import cosimulate
        from repro.utils.rng import make_rng

        kernel = fir_program(n=8, taps=3)
        lowered = lower_kernel(kernel, flatten=True)
        rng = make_rng(3)
        memory = {
            arr: rng.normal(size=size).tolist()
            for arr, size in kernel.arrays.items()
        }
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        refined, _stats = anneal_mapping(mapping, moves=250, seed=5)
        expected = run_kernel_ast(kernel, memory)
        result = cosimulate(lowered, refined, memory)
        assert result.memory["y"] == pytest.approx(expected["y"])
