"""Differential tests: engine acceleration knobs are result-neutral.

``EngineConfig.vectorize`` (numpy candidate scoring) and
``EngineConfig.min_ii`` (sound II warm starts) exist purely to make
sweeps fast. Their contract — enforced here and assumed by the cache
layer, which strips ``ACCEL_FIELDS`` from fingerprints — is *byte
identity*: the same mapping, the same search counters, the same per-II
effort rows as the scalar reference, on every fabric/kernel pairing.

The routing distance-oracle cache is process-global by design (that is
the cross-point reuse feature), so each run clears it first. The
oracle build/reuse tallies — cache-state accounting, not search
effort — live on :class:`EngineStats` fields but are deliberately
absent from ``as_counters()`` (they would differ between ``--jobs 1``
and ``--jobs N``); counter equality below therefore covers every
counter the engine exports.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import CGRA
from repro.compile.fingerprint import mapping_cache_key
from repro.kernels import load_kernel
from repro.mapper import routing
from repro.mapper.engine import (
    ACCEL_FIELDS,
    EngineConfig,
    EngineStats,
    map_dfg,
)
from repro.mapper.exact import exact_lower_bound

FABRICS = {
    "mesh44": CGRA.build(4, 4, island_shape=(2, 2)),
    "mesh63": CGRA.build(6, 3, island_shape=(3, 3)),
    "torus44": CGRA.build(4, 4, island_shape=(2, 2), topology="torus"),
    "king44": CGRA.build(4, 4, island_shape=(1, 1), topology="king"),
}

KERNELS = ("fir", "mvt", "latnrm", "dtw", "solver0", "histogram")


def _run(kernel: str, fabric: str, dvfs_aware: bool, **accel):
    """One cold engine run; returns (blob, effort counters, per-II)."""
    routing.clear_oracle_cache()
    dfg = load_kernel(kernel, 1)
    cgra = FABRICS[fabric]
    stats = EngineStats()
    config = EngineConfig(dvfs_aware=dvfs_aware, **accel)
    mapping = map_dfg(dfg, cgra, config, stats=stats)
    blob = json.dumps(mapping.to_dict(), sort_keys=True,
                      separators=(",", ":"))
    return blob, stats.as_counters(), stats.per_ii


@given(kernel=st.sampled_from(KERNELS),
       fabric=st.sampled_from(sorted(FABRICS)),
       dvfs_aware=st.booleans())
@settings(max_examples=25, deadline=None)
def test_vectorized_scoring_is_bit_identical(kernel, fabric, dvfs_aware):
    ref = _run(kernel, fabric, dvfs_aware, vectorize=False)
    vec = _run(kernel, fabric, dvfs_aware, vectorize=True)
    assert vec[0] == ref[0], "mapping blob diverged"
    assert vec[1] == ref[1], "search counters diverged"
    assert vec[2] == ref[2], "per-II effort rows diverged"


@given(kernel=st.sampled_from(KERNELS),
       fabric=st.sampled_from(sorted(FABRICS)),
       dvfs_aware=st.booleans())
@settings(max_examples=15, deadline=None)
def test_min_ii_warm_start_is_bit_identical(kernel, fabric, dvfs_aware):
    dfg = load_kernel(kernel, 1)
    bound = exact_lower_bound(dfg, FABRICS[fabric])
    cold = _run(kernel, fabric, dvfs_aware, min_ii=0)
    warm = _run(kernel, fabric, dvfs_aware, min_ii=bound)
    assert warm[0] == cold[0], "mapping blob diverged"
    # Warm starts may *skip* doomed low-II attempts entirely, so the
    # per-II row lists agree on every II both runs actually tried —
    # and the warm run tried a suffix of the cold run's IIs.
    cold_iis = [row["ii"] for row in cold[2]]
    warm_iis = [row["ii"] for row in warm[2]]
    assert warm_iis == [ii for ii in cold_iis if ii >= bound]
    assert warm[2] == [row for row in cold[2] if row["ii"] >= bound]


def test_min_ii_above_bound_skips_attempts():
    """A warm start strictly above the natural floor provably skips
    deepening work (the mechanism the DSE sibling seeding relies on)."""
    cold = _run("fft", "mesh44", False, min_ii=0)
    solved_ii = cold[2][-1]["ii"]
    assert cold[2][-1]["outcome"] == "mapped"
    warm = _run("fft", "mesh44", False, min_ii=solved_ii)
    assert warm[0] == cold[0]
    assert len(warm[2]) == 1 and warm[2][0]["ii"] == solved_ii


@pytest.mark.parametrize("field", ACCEL_FIELDS)
def test_accel_fields_do_not_split_the_cache(field):
    dfg = load_kernel("fir", 1)
    cgra = FABRICS["mesh44"]
    base = EngineConfig()
    toggled = {"vectorize": EngineConfig(vectorize=not base.vectorize),
               "min_ii": EngineConfig(min_ii=7)}[field]
    assert (mapping_cache_key(dfg, cgra, base, "engine")
            == mapping_cache_key(dfg, cgra, toggled, "engine"))


def test_oracle_cache_reuse_is_observable():
    """Two identical runs without clearing: the second reuses columns
    the first built (the cross-point channel the DSE driver exploits)."""
    routing.clear_oracle_cache()
    dfg = load_kernel("fir", 1)
    cgra = FABRICS["mesh44"]
    first = EngineStats()
    map_dfg(dfg, cgra, EngineConfig(), stats=first)
    second = EngineStats()
    map_dfg(dfg, cgra, EngineConfig(), stats=second)
    assert first.oracle_cols_built > 0
    assert second.oracle_cols_built == 0
    assert second.oracle_cols_reused > 0
    routing.clear_oracle_cache()
