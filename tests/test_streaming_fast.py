"""Fast streaming engine: blocks, chunked workloads, and equality with
the scalar reference on the real applications.

The property-based differential suite lives in
``test_streaming_differential.py``; these are the deterministic unit
tests — feature blocks, the window re-chunker, the satellite
regression fixes (duplicated input object, derived frequency), and
fast-vs-reference equality on the gcn/lu partitions the module fixture
builds.
"""

from dataclasses import MISSING, asdict

import numpy as np
import pytest

from repro.streaming import (
    DVFSController,
    EnzymeGraphStream,
    FeatureBlock,
    SparseMatrixStream,
    StreamInput,
    blocks_of,
    fast_simulate_drips,
    fast_simulate_static,
    fast_simulate_stream,
    gcn_app,
    inputs_of,
    partition_app,
    simulate_drips,
    simulate_static,
    simulate_stream,
    skip_blocks,
    streaming_cgra,
    take_inputs,
)
from repro.streaming.engine import (
    StreamResult,
    WindowStats,
    _maxplus_scan_array,
    _maxplus_scan_list,
    _window_iteration_chunks,
)


@pytest.fixture(scope="module")
def fabric():
    return streaming_cgra()


@pytest.fixture(scope="module")
def gcn_inputs():
    return EnzymeGraphStream(num_graphs=60, seed=3).generate()


@pytest.fixture(scope="module")
def gcn_partition(fabric, gcn_inputs):
    return partition_app(gcn_app(), fabric, gcn_inputs[:20])


class TestFeatureBlocks:
    def test_roundtrip(self, gcn_inputs):
        for block_size in (1, 7, 60, 8192):
            back = inputs_of(blocks_of(gcn_inputs, block_size))
            assert [i.features for i in back] == [
                i.features for i in gcn_inputs
            ]
            assert [i.index for i in back] == [i.index for i in gcn_inputs]

    def test_get_returns_column(self, gcn_inputs):
        block = next(blocks_of(gcn_inputs, 10))
        col = block.get("nnz")
        assert isinstance(col, np.ndarray)
        assert col.tolist() == [i.get("nnz") for i in gcn_inputs[:10]]

    def test_row_materializes_stream_input(self, gcn_inputs):
        block = next(blocks_of(gcn_inputs, 10))
        row = block.row(3)
        assert isinstance(row, StreamInput)
        assert row.index == gcn_inputs[3].index
        assert row.features == gcn_inputs[3].features

    def test_ragged_block_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            FeatureBlock({"a": np.zeros(3), "b": np.zeros(4)})

    def test_bad_block_size_rejected(self, gcn_inputs):
        with pytest.raises(ValueError):
            next(blocks_of(gcn_inputs, 0))

    def test_skip_blocks_splits_mid_block(self, gcn_inputs):
        blocks = list(blocks_of(gcn_inputs, 8))
        skipped = inputs_of(skip_blocks(iter(blocks), 13))
        assert [i.index for i in skipped] == [
            i.index for i in gcn_inputs[13:]
        ]

    def test_take_inputs_prefix(self, gcn_inputs):
        taken = take_inputs(blocks_of(gcn_inputs, 8), 13)
        assert [i.features for i in taken] == [
            i.features for i in gcn_inputs[:13]
        ]


class TestChunkedWorkloads:
    @pytest.mark.parametrize("stream_cls,count", [
        (EnzymeGraphStream, "num_graphs"),
        (SparseMatrixStream, "num_matrices"),
    ])
    def test_feature_blocks_match_generate(self, stream_cls, count):
        stream = stream_cls(**{count: 157}, seed=9)
        reference = stream.generate()
        for block_size in (1, 13, 157, 8192):
            chunked = inputs_of(stream.feature_blocks(block_size))
            assert [i.index for i in chunked] == [
                i.index for i in reference
            ]
            assert [i.features for i in chunked] == [
                i.features for i in reference
            ]

    def test_feature_blocks_deterministic(self):
        a = inputs_of(EnzymeGraphStream(num_graphs=50, seed=4)
                      .feature_blocks(16))
        b = inputs_of(EnzymeGraphStream(num_graphs=50, seed=4)
                      .feature_blocks(32))
        assert [i.features for i in a] == [i.features for i in b]

    def test_block_statistics_envelope(self):
        blocks = list(EnzymeGraphStream(num_graphs=300, seed=1)
                      .feature_blocks(64))
        nodes = np.concatenate([b.get("n_nodes") for b in blocks])
        degrees = np.concatenate([b.get("degree") for b in blocks])
        assert nodes.min() >= 3 and nodes.max() <= 126
        assert degrees.min() >= 2 and degrees.max() <= 126
        assert 20 <= degrees.mean() <= 50  # published mean 32.6

    def test_sparse_blocks_envelope(self):
        blocks = list(SparseMatrixStream(num_matrices=120, seed=2)
                      .feature_blocks(32))
        for block in blocks:
            n = block.get("n")
            assert n.min() >= 16 and n.max() <= 100
            assert (block.get("nnz") >= n).all()

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            next(EnzymeGraphStream().feature_blocks(0))
        with pytest.raises(ValueError):
            next(SparseMatrixStream().feature_blocks(-3))


class TestWindowChunker:
    def _kernels(self):
        app = gcn_app()
        return app.all_kernels()

    def test_rechunks_across_block_boundaries(self, gcn_inputs):
        kernels = self._kernels()
        for block_size in (1, 4, 7, 100):
            for window in (1, 3, 10, 60, 90):
                chunks = list(_window_iteration_chunks(
                    blocks_of(gcn_inputs, block_size), kernels, window))
                sizes = [n for _, n in chunks]
                assert sum(sizes) == len(gcn_inputs)
                assert all(n == window for n in sizes[:-1])
                assert 0 < sizes[-1] <= window
                whole = {
                    k.name: np.concatenate([c[k.name] for c, _ in chunks])
                    for k in kernels
                }
                for kernel in kernels:
                    expected = [kernel.iterations(i) for i in gcn_inputs]
                    assert whole[kernel.name].tolist() == expected


class TestMaxPlusScan:
    def test_scan_matches_sequential(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 17, 256):
            s = rng.integers(0, 10**9, n).astype(np.float64)
            lat = rng.integers(1, 10**6, n).astype(np.float64)
            carry = float(rng.integers(0, 10**9))
            seq = _maxplus_scan_list(s.tolist(), carry, lat.tolist())
            vec = _maxplus_scan_array(s, carry, lat)
            assert vec.tolist() == seq  # bit-identical, not approx


class TestFastEngineEquality:
    @pytest.mark.parametrize("window", [1, 3, 10, 24, 37, 60, 500])
    def test_iced_identical(self, gcn_partition, gcn_inputs, window):
        names = [p.kernel.name for p in gcn_partition.placements]
        ref_ctl = DVFSController(dvfs=gcn_partition.cgra.dvfs,
                                 kernel_names=names, window=window)
        fast_ctl = DVFSController(dvfs=gcn_partition.cgra.dvfs,
                                  kernel_names=names, window=window)
        ref = simulate_stream(gcn_partition, gcn_inputs, window=window,
                              controller=ref_ctl)
        fast = fast_simulate_stream(gcn_partition, gcn_inputs,
                                    window=window, controller=fast_ctl)
        assert asdict(ref) == asdict(fast)
        assert ref_ctl.decisions == fast_ctl.decisions

    @pytest.mark.parametrize("window", [1, 5, 10, 30, 60])
    def test_drips_identical(self, gcn_partition, gcn_inputs, window):
        ref = simulate_drips(gcn_partition, gcn_inputs, window=window)
        fast = fast_simulate_drips(gcn_partition, gcn_inputs,
                                   window=window)
        assert asdict(ref) == asdict(fast)

    @pytest.mark.parametrize("window", [1, 10, 60])
    def test_static_identical(self, gcn_partition, gcn_inputs, window):
        ref = simulate_static(gcn_partition, gcn_inputs, window=window)
        fast = fast_simulate_static(gcn_partition, gcn_inputs,
                                    window=window)
        assert asdict(ref) == asdict(fast)

    def test_block_size_invariance(self, gcn_partition, gcn_inputs):
        baseline = fast_simulate_stream(gcn_partition, gcn_inputs,
                                        window=10)
        for block_size in (1, 9, 17):
            result = fast_simulate_stream(
                gcn_partition, blocks_of(gcn_inputs, block_size),
                window=10)
            assert asdict(result) == asdict(baseline)

    def test_keep_windows_false_same_totals(self, gcn_partition,
                                            gcn_inputs):
        full = fast_simulate_stream(gcn_partition, gcn_inputs, window=10)
        slim = fast_simulate_stream(gcn_partition, gcn_inputs, window=10,
                                    keep_windows=False)
        assert slim.windows == []
        assert slim.makespan_cycles == full.makespan_cycles
        assert slim.total_energy_uj == full.total_energy_uj
        assert slim.inputs == full.inputs

    def test_record_decisions_off_same_levels(self, gcn_partition,
                                              gcn_inputs):
        names = [p.kernel.name for p in gcn_partition.placements]
        on = DVFSController(dvfs=gcn_partition.cgra.dvfs,
                            kernel_names=names, window=10)
        off = DVFSController(dvfs=gcn_partition.cgra.dvfs,
                             kernel_names=names, window=10,
                             record_decisions=False)
        a = fast_simulate_stream(gcn_partition, gcn_inputs, window=10,
                                 controller=on)
        b = fast_simulate_stream(gcn_partition, gcn_inputs, window=10,
                                 controller=off)
        assert asdict(a) == asdict(b)
        assert off.decisions == []
        assert off.num_decisions == on.num_decisions == len(on.decisions)

    def test_empty_stream(self, gcn_partition):
        result = fast_simulate_stream(gcn_partition, [], window=10)
        assert result.inputs == 0
        assert result.windows == []
        assert result.makespan_cycles == 0.0

    def test_bad_window_rejected(self, gcn_partition, gcn_inputs):
        with pytest.raises(ValueError):
            fast_simulate_stream(gcn_partition, gcn_inputs, window=0)


class TestSatelliteRegressions:
    def test_duplicated_input_object_does_not_close_window_early(
            self, gcn_partition, gcn_inputs):
        # The old window-close check compared object identity against
        # inputs[-1]; an input object appearing twice (here: at
        # position 3 and at the end) closed the window at position 3.
        items = gcn_inputs[:10]
        duplicate = items[-1]
        stream = items[:3] + [duplicate] + items[3:]
        result = simulate_stream(gcn_partition, stream, window=50)
        assert len(result.windows) == 1
        assert result.windows[0].inputs == len(stream)
        fast = fast_simulate_stream(gcn_partition, stream, window=50)
        assert asdict(fast) == asdict(result)

    def test_frequency_has_no_hardcoded_default(self):
        assert WindowStats.__dataclass_fields__[
            "frequency_mhz"].default is MISSING
        assert StreamResult.__dataclass_fields__[
            "frequency_mhz"].default is MISSING

    def test_frequency_derived_from_fabric(self, gcn_partition,
                                           gcn_inputs):
        base = gcn_partition.cgra.dvfs.normal.frequency_mhz
        result = simulate_stream(gcn_partition, gcn_inputs[:10], window=5)
        assert result.frequency_mhz == base
        assert all(w.frequency_mhz == base for w in result.windows)
