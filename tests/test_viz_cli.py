"""Tests for the text visualizations and the toolchain CLI."""

import pytest

from repro import viz
from repro.__main__ import main
from repro.mapper.labeling import label_dvfs_levels


class TestViz:
    def test_render_fabric(self, cgra44):
        out = viz.render_fabric(cgra44)
        lines = out.splitlines()
        assert "4 islands" in lines[0]
        assert out.count("*") >= 4  # one SPM marker per memory tile

    def test_render_level_map_glyphs(self, iced_fir, cgra66):
        out = viz.render_level_map(iced_fir)
        grid = out.splitlines()[1:]
        assert len(grid) == 6
        glyphs = {glyph for row in grid for glyph in row.split()}
        assert glyphs <= {"N", "X", "R", "."}
        gated = sum(row.count(".") for row in grid)
        assert gated == len(iced_fir.gated_tiles())

    def test_render_schedule_contains_ops(self, baseline_fig1, fig1):
        out = viz.render_schedule(baseline_fig1)
        assert f"II={baseline_fig1.ii}" in out
        for node in fig1.nodes():
            if node.id in baseline_fig1.placements:
                assert node.label[:10] in out

    def test_render_dfg_with_labels(self, fig1, cgra44):
        labels = label_dvfs_levels(fig1, cgra44, 4)
        out = viz.render_dfg(fig1, labels)
        assert "@normal" in out
        assert "n1" in out
        assert "(sink)" in out or "->" in out

    def test_render_heatmap(self, iced_fir):
        out = viz.render_utilization_heatmap(iced_fir)
        grid = out.splitlines()[1:]
        assert len(grid) == 6
        cells = [cell for row in grid for cell in row.split()]
        assert all(c == "." or c.isdigit() for c in cells)


class TestCLI:
    def test_kernels_listing(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "spmv" in out and "solver1" in out

    def test_fabric(self, capsys):
        assert main(["fabric", "--cgra", "4x4", "--island", "2x2"]) == 0
        assert "4 islands" in capsys.readouterr().out

    def test_map_baseline(self, capsys):
        assert main(["map", "relu", "--strategy", "baseline",
                     "--cgra", "6x6"]) == 0
        out = capsys.readouterr().out
        assert "relu" in out and "II=" in out

    def test_map_iced_with_views(self, capsys):
        assert main(["map", "relu", "--strategy", "iced",
                     "--show", "levels,schedule,power"]) == 0
        out = capsys.readouterr().out
        assert "N=normal" in out
        assert "modulo schedule" in out
        assert "power" in out

    def test_map_bitstream_json(self, capsys):
        assert main(["map", "relu", "--show", "bitstream"]) == 0
        out = capsys.readouterr().out
        assert '"tiles"' in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["map", "nonexistent"])

    def test_experiments_passthrough(self, capsys):
        assert main(["experiments", "fig8"]) == 0
        assert "fig8" in capsys.readouterr().out


class TestDotExport:
    def test_dot_structure(self, fig1, cgra44):
        from repro.mapper.labeling import label_dvfs_levels
        labels = label_dvfs_levels(fig1, cgra44, 4)
        dot = viz.render_dfg_dot(fig1, labels)
        assert dot.startswith('digraph "fig1"')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == fig1.num_edges
        assert "style=dashed" in dot       # loop-carried edges
        assert "palegreen" in dot          # normal critical nodes
        assert "lightblue" in dot          # relax cycle

    def test_dot_without_labels(self, fig1):
        dot = viz.render_dfg_dot(fig1)
        assert "palegreen" not in dot
        assert f"n{fig1.node_ids()[0]}" in dot


class TestSaveOption:
    def test_save_writes_three_files(self, tmp_path):
        from repro.experiments.__main__ import main
        assert main(["fig8", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "fig8.txt").exists()
        assert (tmp_path / "fig8.json").exists()
        assert (tmp_path / "fig8.csv").exists()
        import json
        payload = json.loads((tmp_path / "fig8.json").read_text())
        assert payload["id"] == "fig8"


class TestProfileCommand:
    def test_profile_prints_hot_functions(self, capsys):
        assert main(["profile", "relu", "--strategy", "baseline",
                     "--cgra", "4x4", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "relu (baseline, backend=engine)" in out
        assert "cumulative" in out
        assert "map_dfg" in out or "engine.py" in out

    def test_profile_exact_backend(self, capsys):
        assert main(["profile", "relu", "--strategy", "iced",
                     "--cgra", "4x4", "--backend", "exact",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "backend=exact" in out


class TestCacheEffortCommand:
    def test_cache_stats_reports_engine_effort(self, tmp_path, capsys):
        from repro.compile import DiskCache, compile_kernel
        from repro.arch import CGRA

        cache = DiskCache(tmp_path)
        compile_kernel("relu", CGRA.build(4, 4), strategy="iced",
                       cache=cache)
        effort = cache.engine_effort()
        assert effort["artifacts_with_stats"] == 1
        assert effort["routes_searched"] > 0
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "engine effort across cached artifacts" in out
        assert "route_memo_hits" in out
