"""Tests for retiming, per-tile DVFS, gating, island refinement,
validation and the Mapping container."""

import pytest

from repro.errors import ValidationError
from repro.kernels import load_kernel
from repro.mapper import (
    assign_per_tile_dvfs,
    map_dvfs_aware,
    validate_mapping,
)
from repro.mapper.island_refine import refine_island_levels
from repro.mapper.per_tile import gate_unused_tiles
from repro.mapper.retime import retime_with_levels
from repro.mapper.timing import compute_timing
from repro.dfg.analysis import critical_cycle_nodes
from repro.sim.utilization import average_dvfs_fraction


class TestRetime:
    def test_identity_levels_preserve_mapping(self, baseline_fir):
        retimed = retime_with_levels(baseline_fir, baseline_fir.tile_levels)
        assert retimed is not None
        assert retimed.ii == baseline_fir.ii
        for n, p in baseline_fir.placements.items():
            assert retimed.placements[n].time == p.time
        compute_timing(retimed)

    def test_gated_used_tile_rejected(self, baseline_fir, cgra66):
        levels = dict(baseline_fir.tile_levels)
        some_used = next(iter(baseline_fir.tiles_used()))
        levels[some_used] = cgra66.dvfs.power_gated
        assert retime_with_levels(baseline_fir, levels) is None

    def test_slowing_shifts_times_later_only(self, baseline_fir, cgra66):
        # Slow one non-critical used tile; if retiming succeeds no node
        # may move earlier.
        critical = {
            baseline_fir.placements[n].tile
            for n in critical_cycle_nodes(baseline_fir.dfg)
        }
        candidates = sorted(baseline_fir.tiles_used() - critical)
        for tile in candidates:
            levels = dict(baseline_fir.tile_levels)
            levels[tile] = cgra66.dvfs.level_named("relax")
            retimed = retime_with_levels(baseline_fir, levels)
            if retimed is None:
                continue
            for n, p in baseline_fir.placements.items():
                assert retimed.placements[n].time >= p.time
            return
        pytest.skip("no retimable tile in this mapping")


class TestPerTileDVFS:
    def test_validates_and_preserves_ii(self, baseline_fir, per_tile_fir):
        validate_mapping(per_tile_fir)
        assert per_tile_fir.ii == baseline_fir.ii
        assert per_tile_fir.strategy == "per_tile_dvfs"

    def test_unused_tiles_gated(self, baseline_fir, per_tile_fir):
        used = baseline_fir.tiles_used()
        for tile, level in per_tile_fir.tile_levels.items():
            if tile not in used:
                assert level.is_gated

    def test_critical_tiles_not_slowed(self, baseline_fir, per_tile_fir,
                                       cgra66):
        critical = {
            baseline_fir.placements[n].tile
            for n in critical_cycle_nodes(baseline_fir.dfg)
        }
        for tile in critical:
            assert per_tile_fir.tile_levels[tile] is cgra66.dvfs.normal

    def test_average_level_not_above_baseline(self, baseline_fir,
                                              per_tile_fir):
        assert average_dvfs_fraction(per_tile_fir) <= \
            average_dvfs_fraction(baseline_fir)

    def test_without_gating(self, baseline_fir):
        mapping = assign_per_tile_dvfs(baseline_fir, power_gating=False)
        assert not mapping.gated_tiles()
        validate_mapping(mapping)


class TestGating:
    def test_island_granular_gating(self, baseline_fir, cgra66):
        gated = gate_unused_tiles(baseline_fir)
        used = baseline_fir.tiles_used()
        for island in cgra66.islands:
            if any(t in used for t in island.tile_ids):
                assert all(
                    not gated.tile_levels[t].is_gated
                    for t in island.tile_ids
                )
            else:
                assert all(
                    gated.tile_levels[t].is_gated
                    for t in island.tile_ids
                )

    def test_per_tile_granular_gating(self, baseline_fir):
        gated = gate_unused_tiles(baseline_fir, per_island=False)
        used = baseline_fir.tiles_used()
        assert gated.gated_tiles() == set(
            t.id for t in baseline_fir.cgra.tiles
        ) - used

    def test_strategy_tag(self, baseline_fir):
        assert gate_unused_tiles(baseline_fir).strategy == "baseline+gating"


class TestIslandRefinement:
    def test_refines_validates(self, cgra66):
        raw = map_dvfs_aware(load_kernel("relu", 1), cgra66, refine=False)
        refined = refine_island_levels(raw)
        validate_mapping(refined)
        assert refined.ii == raw.ii

    def test_never_speeds_up_levels(self, cgra66):
        raw = map_dvfs_aware(load_kernel("relu", 1), cgra66, refine=False)
        refined = refine_island_levels(raw)
        assert average_dvfs_fraction(refined) <= \
            average_dvfs_fraction(raw) + 1e-9

    def test_respects_allowed_levels(self, cgra66):
        from repro.mapper import EngineConfig
        raw = map_dvfs_aware(
            load_kernel("relu", 1), cgra66,
            EngineConfig(dvfs_aware=True,
                         allowed_level_names=("normal", "relax")),
            refine=False,
        )
        refined = refine_island_levels(raw, ("normal", "relax"))
        for level in refined.tile_levels.values():
            assert level.name in ("normal", "relax", "power_gated")


class TestValidationCatchesCorruption:
    def test_missing_placement(self, baseline_fig1):
        import copy
        broken = copy.copy(baseline_fig1)
        broken.placements = dict(baseline_fig1.placements)
        broken.placements.pop(next(iter(broken.placements)))
        with pytest.raises(ValidationError, match="not placed"):
            validate_mapping(broken)

    def test_missing_route(self, baseline_fig1):
        import copy
        broken = copy.copy(baseline_fig1)
        broken.routes = dict(baseline_fig1.routes)
        broken.routes.pop(next(iter(broken.routes)))
        with pytest.raises(ValidationError, match="not routed"):
            validate_mapping(broken)

    def test_fu_conflict_detected(self, baseline_fig1):
        import copy
        from repro.mapper.mapping import Placement
        broken = copy.copy(baseline_fig1)
        broken.placements = dict(baseline_fig1.placements)
        nodes = sorted(broken.placements)
        a, b = nodes[0], nodes[1]
        pa = broken.placements[a]
        # Put b exactly where a is: same tile, same time slot.
        broken.placements[b] = Placement(b, pa.tile, pa.time)
        with pytest.raises(ValidationError):
            validate_mapping(broken)

    def test_ii_exceeding_config_depth(self, baseline_fig1):
        import copy
        broken = copy.copy(baseline_fig1)
        broken.ii = 1000
        with pytest.raises(ValidationError, match="configuration depth"):
            validate_mapping(broken)

    def test_island_level_mismatch(self, iced_fig1, cgra44):
        import copy
        broken = copy.copy(iced_fig1)
        broken.tile_levels = dict(iced_fig1.tile_levels)
        # Flip one tile of a multi-tile island to a different level.
        island = cgra44.islands[0]
        target = island.tile_ids[0]
        current = broken.tile_levels[target]
        other = (cgra44.dvfs.level_named("relax")
                 if current is not cgra44.dvfs.level_named("relax")
                 else cgra44.dvfs.normal)
        broken.tile_levels[target] = other
        with pytest.raises(ValidationError):
            validate_mapping(broken)


class TestMappingContainer:
    def test_summary_mentions_kernel(self, baseline_fig1):
        assert "fig1" in baseline_fig1.summary()
        assert "II=" in baseline_fig1.summary()

    def test_to_dict_jsonable(self, baseline_fig1):
        import json
        json.dumps(baseline_fig1.to_dict())

    def test_tiles_used_includes_routes(self, baseline_fig1):
        used = baseline_fig1.tiles_used()
        for route in baseline_fig1.routes.values():
            assert set(route.path) <= used

    def test_schedule_depth_positive(self, baseline_fig1):
        assert baseline_fig1.schedule_depth() > 0

    def test_ops_on_tile_sorted(self, baseline_fig1):
        for tile in baseline_fig1.tiles_used():
            ops = baseline_fig1.ops_on_tile(tile)
            times = [p.time for p in ops]
            assert times == sorted(times)

    def test_slowdown_of_gated_tile_raises(self, iced_fig1):
        gated = iced_fig1.gated_tiles()
        if not gated:
            pytest.skip("no gated tiles in this mapping")
        with pytest.raises(ValidationError):
            iced_fig1.slowdown(next(iter(gated)))
