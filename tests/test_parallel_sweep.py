"""The parallel sweep executor's determinism and merging contracts.

The headline invariant: ``--jobs N`` is bit-identical to ``--jobs 1``.
Seeds are derived in the parent from (sweep seed, work-item index), so
where an item lands — which worker, what order — can never leak into
its result.
"""

import json

import pytest

from repro.arch.cgra import CGRA
from repro.compile import (
    Instrumentation,
    SweepExecutor,
    SweepItem,
    default_jobs,
)
from repro.compile.parallel import ENV_JOBS
from repro.errors import MappingError
from repro.kernels.suite import load_kernel
from repro.utils.rng import derive_worker_seed, worker_rng

KERNELS = ("fir", "relu", "mvt")


def canon(mapping) -> str:
    return json.dumps(mapping.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def _items(strategy: str = "iced") -> list[SweepItem]:
    return [SweepItem(kernel=name, strategy=strategy) for name in KERNELS]


class TestWorkerSeeds:
    def test_deterministic(self):
        assert derive_worker_seed(42, 0) == derive_worker_seed(42, 0)
        assert derive_worker_seed(42, 1) == derive_worker_seed(42, 1)

    def test_distinct_per_index_and_parent(self):
        seeds = {derive_worker_seed(7, i) for i in range(100)}
        assert len(seeds) == 100
        assert derive_worker_seed(7, 0) != derive_worker_seed(8, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            derive_worker_seed(0, -1)

    def test_worker_rng_streams_independent(self):
        a = worker_rng(3, 0).normal(size=4)
        b = worker_rng(3, 1).normal(size=4)
        again = worker_rng(3, 0).normal(size=4)
        assert list(a) == list(again)
        assert list(a) != list(b)


class TestSweepItem:
    def test_exactly_one_input_required(self):
        with pytest.raises(ValueError):
            SweepItem()
        with pytest.raises(ValueError):
            SweepItem(kernel="fir", dfg=load_kernel("fir"))

    def test_name(self):
        assert SweepItem(kernel="fir").name == "fir"
        dfg = load_kernel("relu")
        assert SweepItem(dfg=dfg).name == dfg.name


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "3")
        assert default_jobs() == 3
        monkeypatch.setenv(ENV_JOBS, "garbage")
        assert default_jobs() >= 1
        monkeypatch.delenv(ENV_JOBS)
        assert default_jobs() >= 1


class TestDeterminism:
    """jobs=N must be bit-identical to jobs=1."""

    def _blobs(self, jobs: int, strategy: str, seed: int = 0,
               cgra_size: int = 6) -> list[str]:
        executor = SweepExecutor(jobs=jobs, seed=seed)
        cgra = CGRA.build(cgra_size, cgra_size)
        outcomes = executor.run(_items(strategy), cgra)
        return [canon(o.mapping) for o in outcomes]

    def test_parallel_matches_serial(self):
        assert self._blobs(1, "iced") == self._blobs(2, "iced")

    def test_parallel_matches_serial_annealed(self):
        # The annealer consumes its per-item seed: this is the
        # regression test for seed derivation under fan-out.
        assert self._blobs(1, "anneal") == self._blobs(3, "anneal")

    def test_sweep_seed_changes_annealed_results(self):
        base = self._blobs(1, "anneal", seed=0)
        other = self._blobs(1, "anneal", seed=99)
        assert base != other

    def test_explicit_item_seed_wins(self):
        item = SweepItem(kernel="fir", strategy="anneal", seed=1234)
        cgra = CGRA.build(6, 6)
        a = SweepExecutor(jobs=1, seed=0).run([item], cgra)
        b = SweepExecutor(jobs=1, seed=55).run([item], cgra)
        assert canon(a[0].mapping) == canon(b[0].mapping)


class TestPoolMechanics:
    def test_outcomes_in_worklist_order(self):
        executor = SweepExecutor(jobs=2)
        outcomes = executor.run(_items(), CGRA.build(6, 6))
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.item.kernel for o in outcomes] == list(KERNELS)

    def test_worker_events_merged(self):
        instrument = Instrumentation()
        executor = SweepExecutor(jobs=2, instrument=instrument)
        executor.run(_items(), CGRA.build(6, 6))
        by_pass: dict[str, int] = {}
        for event in instrument.events:
            by_pass[event.pass_name] = by_pass.get(event.pass_name, 0) + 1
        # Every kernel contributes its full pass sequence plus the
        # parent-side revalidation of the returned artifact.
        assert by_pass["place_route"] == len(KERNELS)
        assert by_pass["revalidate"] == len(KERNELS)
        kernels_seen = {e.kernel for e in instrument.events}
        assert set(KERNELS) <= kernels_seen

    def test_parallel_results_revalidated(self):
        executor = SweepExecutor(jobs=2)
        outcomes = executor.run(_items(), CGRA.build(6, 6))
        for outcome in outcomes:
            assert outcome.result.report.ii == outcome.mapping.ii

    def test_mapping_error_captured_not_raised(self):
        # An II budget of 1 is unmeetable: the outcome carries the
        # error (with its last tried II) instead of raising.
        from repro.mapper.engine import EngineConfig

        config = EngineConfig(dvfs_aware=True, max_ii=1)
        executor = SweepExecutor(jobs=2)
        items = [SweepItem(kernel="fir", config=config),
                 SweepItem(kernel="relu", config=config)]
        outcomes = executor.run(items, CGRA.build(6, 6))
        assert all(not o.ok for o in outcomes)
        for outcome in outcomes:
            assert isinstance(outcome.error, MappingError)
            assert outcome.error.last_ii == 1
            with pytest.raises(MappingError):
                outcome.mapping

    def test_disk_cache_warms_fresh_executor(self, tmp_path):
        cgra = CGRA.build(6, 6)
        cold = SweepExecutor(jobs=2, cache_dir=str(tmp_path))
        first = cold.run(_items(), cgra)
        # A brand-new executor (fresh memory cache) over the same disk
        # tree serves everything as cache hits, byte-identically.
        warm = SweepExecutor(jobs=1, cache_dir=str(tmp_path))
        second = warm.run(_items(), cgra)
        assert all(o.result.cache_hit for o in second)
        assert [canon(o.mapping) for o in first] == \
            [canon(o.mapping) for o in second]


class TestPartitionerParity:
    def test_ii_table_jobs_identical_to_serial(self, tmp_path):
        from repro.kernels.suite import load_kernel
        from repro.streaming.app import StreamingApp
        from repro.streaming.partitioner import (
            build_ii_table,
            streaming_cgra,
        )
        from repro.streaming.stage import KernelStage

        app = StreamingApp(name="tiny", stages=[
            [KernelStage("fir", load_kernel("fir"), lambda item: 8)],
            [KernelStage("relu", load_kernel("relu"), lambda item: 8)],
        ])
        cgra = streaming_cgra()
        serial = build_ii_table(app, cgra, max_islands_per_kernel=2,
                                jobs=1)
        parallel = build_ii_table(app, cgra, max_islands_per_kernel=2,
                                  jobs=2, cache_dir=str(tmp_path))
        assert serial == parallel
        assert set(serial) == {
            ("fir", 1), ("fir", 2), ("relu", 1), ("relu", 2)
        }


class TestSweepStrategiesParity:
    def test_jobs_bit_identical_to_serial(self):
        from repro.experiments.common import (
            STRATEGIES,
            clear_cache,
            sweep_strategies,
        )

        cgra = CGRA.build(6, 6, island_shape=(2, 2))
        def metric(bundle, strategy):
            return float(bundle.mapping.ii)

        def run(jobs):
            clear_cache()
            return sweep_strategies(("fir", "relu"), cgra, STRATEGIES,
                                    metric, jobs=jobs)

        serial, parallel = run(1), run(2)
        clear_cache()
        assert serial.averages == parallel.averages
        assert [(r.kernel, r.unroll, r.values) for r in serial.rows] == \
            [(r.kernel, r.unroll, r.values) for r in parallel.rows]
