"""Tests for the Table I kernel suite and the DFG synthesizer."""

import pytest

from repro.dfg import dfg_stats
from repro.dfg.analysis import recurrence_cycles
from repro.dfg.ops import Opcode
from repro.errors import DFGError
from repro.kernels import (
    GCN_KERNELS,
    LU_KERNELS,
    STANDALONE_KERNELS,
    TABLE1_SPECS,
    fig1_kernel,
    kernel_names,
    kernel_spec,
    load_kernel,
    synthesize_dfg,
)


class TestTable1Specs:
    def test_all_names_present(self):
        assert len(TABLE1_SPECS) == 21
        assert set(STANDALONE_KERNELS) <= set(TABLE1_SPECS)
        assert set(GCN_KERNELS) <= set(TABLE1_SPECS)
        assert set(LU_KERNELS) <= set(TABLE1_SPECS)

    def test_spec_lookup(self):
        spec = kernel_spec("spmv")
        assert spec.u1 == (19, 24, 4)
        assert spec.u2 == (37, 50, 7)

    def test_unknown_kernel(self):
        with pytest.raises(DFGError):
            kernel_spec("bogus")

    def test_stats_unpublished_unroll(self):
        with pytest.raises(DFGError):
            kernel_spec("fir").stats(3)


class TestSuiteStatistics:
    @pytest.mark.parametrize("name", sorted(TABLE1_SPECS))
    @pytest.mark.parametrize("unroll", [1, 2])
    def test_exact_published_stats(self, name, unroll):
        dfg = load_kernel(name, unroll)
        stats = dfg_stats(dfg)
        expected = TABLE1_SPECS[name].stats(unroll)
        assert (stats.nodes, stats.edges, stats.rec_mii) == expected

    def test_deterministic_across_calls(self):
        a, b = load_kernel("gemm", 2), load_kernel("gemm", 2)
        assert [(e.src, e.dst, e.dist) for e in a.edges()] == \
            [(e.src, e.dst, e.dist) for e in b.edges()]
        assert [n.opcode for n in a.nodes()] == [n.opcode for n in b.nodes()]

    def test_unroll_4_uses_transform(self):
        u2 = load_kernel("fir", 2)
        u4 = load_kernel("fir", 4)
        assert u4.num_nodes == 2 * u2.num_nodes

    def test_odd_high_unroll_rejected(self):
        with pytest.raises(DFGError):
            load_kernel("fir", 3)

    def test_bad_unroll(self):
        with pytest.raises(DFGError):
            load_kernel("fir", 0)

    def test_kernel_names_sorted(self):
        names = kernel_names()
        assert names == sorted(names)
        assert len(names) == 21

    def test_every_kernel_has_loads_and_stores(self):
        for name in STANDALONE_KERNELS:
            dfg = load_kernel(name, 1)
            ops = [n.opcode for n in dfg.nodes()]
            assert Opcode.LOAD in ops
            assert Opcode.STORE in ops

    def test_every_kernel_validates(self):
        for name in kernel_names():
            load_kernel(name, 1).validate()


class TestSynthesizer:
    def test_requested_statistics(self):
        dfg = synthesize_dfg("custom", nodes=25, edges=36, rec_mii=5,
                             domain="hpc", seed=3)
        stats = dfg_stats(dfg)
        assert (stats.nodes, stats.edges, stats.rec_mii) == (25, 36, 5)

    def test_secondary_cycle_present(self):
        dfg = synthesize_dfg("two_cycles", nodes=20, edges=28, rec_mii=6,
                             seed=1)
        lengths = sorted(c.length for c in recurrence_cycles(dfg))
        assert lengths[-1] == 6
        assert len(lengths) >= 2
        assert lengths[0] <= 3  # at most half the critical length

    def test_seed_changes_wiring(self):
        a = synthesize_dfg("k", 20, 28, 4, seed=1)
        b = synthesize_dfg("k", 20, 28, 4, seed=2)
        assert [(e.src, e.dst) for e in a.edges()] != \
            [(e.src, e.dst) for e in b.edges()]

    def test_unknown_domain(self):
        with pytest.raises(DFGError):
            synthesize_dfg("k", 20, 28, 4, domain="quantum")

    def test_too_few_nodes(self):
        with pytest.raises(DFGError):
            synthesize_dfg("k", 4, 8, 4)

    def test_edge_budget_too_small(self):
        with pytest.raises(DFGError):
            synthesize_dfg("k", 20, 10, 4)

    def test_no_dangling_values(self):
        dfg = synthesize_dfg("k", 24, 34, 4, seed=5)
        for node in dfg.nodes():
            if node.opcode is not Opcode.STORE:
                assert dfg.out_edges(node.id), f"{node} feeds nothing"


class TestFig1Kernel:
    def test_published_shape(self):
        dfg = fig1_kernel()
        stats = dfg_stats(dfg)
        assert (stats.nodes, stats.rec_mii) == (11, 4)

    def test_cycle_membership(self):
        dfg = fig1_kernel()
        cycles = recurrence_cycles(dfg)
        by_len = {c.length: set(c.nodes) for c in cycles}
        names = {n.id: n.label for n in dfg.nodes()}
        assert {names[n] for n in by_len[4]} == {"n1", "n4", "n7", "n9"}
        assert {names[n] for n in by_len[2]} == {"n10", "n11"}

    def test_has_memory_op(self):
        assert fig1_kernel().memory_nodes()
