"""Docstring examples must stay executable (they are the API's
first documentation)."""

import doctest

import pytest

import repro.arch.cgra
import repro.dfg.builder
import repro.utils.tables

MODULES = [
    repro.arch.cgra,
    repro.dfg.builder,
    repro.utils.tables,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_doctests(module):
    failures, attempted = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE
    )[0], None
    assert failures == 0
