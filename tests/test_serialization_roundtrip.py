"""Round-trip tests for mapping serialization."""

import json

import pytest

from repro.errors import ValidationError
from repro.kernels import load_kernel
from repro.mapper import validate_mapping
from repro.mapper.mapping import Mapping


class TestMappingRoundTrip:
    def test_json_round_trip_validates(self, baseline_fir, cgra66):
        payload = json.loads(json.dumps(baseline_fir.to_dict()))
        rebuilt = Mapping.from_dict(payload, baseline_fir.dfg, cgra66)
        validate_mapping(rebuilt)

    def test_round_trip_is_lossless(self, iced_fir, cgra66):
        payload = iced_fir.to_dict()
        rebuilt = Mapping.from_dict(payload, iced_fir.dfg, cgra66)
        assert rebuilt.to_dict() == payload
        assert rebuilt.ii == iced_fir.ii
        assert rebuilt.strategy == "iced"
        for tile, level in iced_fir.tile_levels.items():
            assert rebuilt.tile_levels[tile] is level

    def test_kernel_mismatch_rejected(self, baseline_fir, cgra66):
        other = load_kernel("relu", 1)
        with pytest.raises(ValidationError, match="kernel"):
            Mapping.from_dict(baseline_fir.to_dict(), other, cgra66)

    def test_tampered_payload_caught_by_validation(self, baseline_fir,
                                                   cgra66):
        payload = baseline_fir.to_dict()
        first = next(iter(payload["placements"]))
        payload["placements"][first]["time"] = -5
        rebuilt = Mapping.from_dict(payload, baseline_fir.dfg, cgra66)
        with pytest.raises(ValidationError):
            validate_mapping(rebuilt)
