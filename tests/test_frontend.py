"""Frontend tests: AST validation, lowering structure, interpreters."""

import pytest

from repro.dfg import Opcode, rec_mii
from repro.errors import FrontendError
from repro.frontend import (
    Accumulate,
    Assign,
    Bin,
    Cmp,
    Const,
    For,
    Kernel,
    Ref,
    Var,
    lower_kernel,
    run_kernel_ast,
    run_lowered_dfg,
)
from repro.frontend.ast import Unary
from repro.kernels.programs import (
    ALL_PROGRAMS,
    dotprod_program,
    fir_program,
    relu_program,
)
from repro.utils.rng import make_rng


def random_memory(kernel: Kernel, seed: int = 0):
    rng = make_rng(seed)
    return {
        name: rng.normal(size=size).tolist()
        for name, size in kernel.arrays.items()
    }


class TestAST:
    def test_bad_operator_rejected(self):
        with pytest.raises(FrontendError):
            Bin("**", Const(1), Const(2))
        with pytest.raises(FrontendError):
            Cmp("<>", Const(1), Const(2))
        with pytest.raises(FrontendError):
            Unary("exp", Const(1))
        with pytest.raises(FrontendError):
            Accumulate(Var("x"), "**", Const(1))

    def test_trip_count(self):
        loop = For("i", 2, 10, [])
        assert loop.trip_count == 8
        assert For("i", 5, 5, []).trip_count == 0

    def test_footprint(self):
        k = fir_program(n=64, taps=8)
        assert k.footprint_bytes() == (72 + 8 + 64) * 4

    def test_innermost_loop(self):
        k = fir_program()
        assert k.innermost_loop().var == "j"

    def test_sibling_loops_rejected(self):
        k = Kernel(
            name="bad", arrays={"a": 4},
            body=For("i", 0, 2, [
                For("j", 0, 2, []),
                For("k", 0, 2, []),
            ]),
        )
        with pytest.raises(FrontendError):
            k.innermost_loop()


class TestLoweringStructure:
    def test_flattened_fir_has_odometer(self):
        lk = lower_kernel(fir_program(n=8, taps=4), flatten=True)
        phis = [n for n in lk.dfg.nodes() if n.opcode is Opcode.PHI]
        names = {p.name for p in phis}
        assert {"i", "j", "acc"} <= names
        assert lk.trip_count == 32
        assert lk.loop_vars == ["i", "j"]

    def test_flattened_recmii_from_odometer(self):
        lk = lower_kernel(fir_program(n=8, taps=4), flatten=True)
        assert rec_mii(lk.dfg) >= 3

    def test_innermost_mode_externals(self):
        lk = lower_kernel(fir_program(n=8, taps=4), flatten=False)
        assert "i" in lk.externals
        assert "acc" in lk.externals
        assert lk.trip_count == 4

    def test_if_lowers_to_select_or_predicated_store(self):
        lk = lower_kernel(relu_program(n=8), flatten=True)
        opcodes = {n.opcode for n in lk.dfg.nodes()}
        assert Opcode.CMP in opcodes
        stores = [n for n in lk.dfg.nodes() if n.opcode is Opcode.STORE]
        assert stores
        # Predicated stores carry a third input (the predicate).
        assert any(len(lk.dfg.in_edges(s.id)) == 3 for s in stores)

    def test_undeclared_array_rejected(self):
        k = Kernel(name="bad", arrays={},
                   body=For("i", 0, 4, [
                       Assign(Var("x"), Ref("ghost", Var("i"))),
                   ]))
        with pytest.raises(FrontendError):
            lower_kernel(k)

    def test_load_cse(self):
        # h[j] read twice in one body lowers to a single LOAD.
        k = Kernel(name="cse", arrays={"h": 8, "y": 8},
                   body=For("j", 0, 8, [
                       Assign(Ref("y", Var("j")),
                              Bin("*", Ref("h", Var("j")),
                                  Ref("h", Var("j")))),
                   ]))
        lk = lower_kernel(k, flatten=True)
        loads = [n for n in lk.dfg.nodes() if n.opcode is Opcode.LOAD]
        assert len(loads) == 1


class TestSemanticEquivalence:
    """The lowered DFG must compute exactly what the AST computes."""

    @staticmethod
    def _fix_memory(name, kernel, mem):
        """Give integer-valued arrays sane contents where the kernel
        indexes through them."""
        if name == "histogram":
            mem["data"] = [float(abs(int(v * 10))) for v in mem["data"]]
            mem["hist"] = [0.0] * len(mem["hist"])
        if name == "spmv":
            rows = len(mem["x"])
            mem["col"] = [
                float(abs(int(v * 100)) % rows) for v in mem["col"]
            ]
        return mem

    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_flattened_matches_ast(self, name):
        kernel = ALL_PROGRAMS[name]()
        mem = random_memory(kernel, seed=abs(hash(name)) % 1000)
        mem = self._fix_memory(name, kernel, mem)
        expected = run_kernel_ast(kernel, mem)
        lowered = lower_kernel(kernel, flatten=True)
        actual = run_lowered_dfg(lowered, mem)
        for array in kernel.arrays:
            assert actual.memory[array] == pytest.approx(expected[array]), \
                f"array {array} differs for {name}"

    def test_innermost_matches_ast_fir(self):
        kernel = fir_program(n=16, taps=4)
        mem = random_memory(kernel, seed=5)
        expected = run_kernel_ast(kernel, mem)
        lowered = lower_kernel(kernel, flatten=False)
        mem2 = {k: list(v) for k, v in mem.items()}
        for i in range(16):
            run = run_lowered_dfg(lowered, mem2,
                                  externals={"i": i, "acc": 0.0})
            mem2["y"][i] = run.scalars["acc"]
        assert mem2["y"] == pytest.approx(expected["y"])

    def test_missing_external_raises(self):
        lowered = lower_kernel(fir_program(n=8, taps=2), flatten=False)
        mem = random_memory(fir_program(n=8, taps=2))
        with pytest.raises(FrontendError):
            run_lowered_dfg(lowered, mem, externals={})

    def test_missing_array_raises(self):
        kernel = dotprod_program(n=8)
        with pytest.raises(FrontendError):
            run_kernel_ast(kernel, {"a": [0.0] * 8})

    def test_short_array_raises(self):
        kernel = dotprod_program(n=8)
        with pytest.raises(FrontendError):
            run_kernel_ast(kernel, {"a": [0.0] * 4, "b": [0.0] * 8,
                                    "out": [0.0]})

    def test_loop_invariant_scalar_is_external(self):
        from repro.kernels.programs import saxpy_program
        kernel = saxpy_program(n=8)
        lowered = lower_kernel(kernel, flatten=True)
        assert "alpha" in lowered.externals
        mem = random_memory(kernel, seed=3)
        run = run_lowered_dfg(lowered, mem, externals={"alpha": 2.5})
        expected = [2.5 * x + y for x, y in zip(mem["x"], mem["y"])]
        assert run.memory["y"] == pytest.approx(expected)

    def test_indirect_load_chain(self):
        from repro.kernels.programs import spmv_program
        kernel = spmv_program(rows=4, nnz_per_row=2)
        lowered = lower_kernel(kernel, flatten=True)
        loads = [
            n.id for n in lowered.dfg.nodes()
            if n.opcode is Opcode.LOAD
        ]
        # x[col[idx]]: at least one load's index input is another load.
        chained = any(
            lowered.dfg.node(src).opcode is Opcode.LOAD
            for ld in loads
            for src in lowered.dfg.predecessors(ld)
        )
        assert chained
