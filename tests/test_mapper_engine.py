"""Tests for the placement engine: baseline and DVFS-aware mapping."""

import pytest

from repro.arch import CGRA
from repro.dfg import DFGBuilder, Opcode
from repro.errors import MappingError
from repro.kernels import load_kernel
from repro.mapper import (
    EngineConfig,
    map_baseline,
    map_dvfs_aware,
    validate_mapping,
)
from repro.mapper.engine import map_dfg


class TestBaseline:
    def test_fig1_maps_and_validates(self, baseline_fig1):
        report = validate_mapping(baseline_fig1)
        assert baseline_fig1.ii >= 4  # RecMII of the fig1 kernel
        assert report.ii == baseline_fig1.ii

    def test_all_nodes_placed(self, baseline_fig1, fig1):
        assert set(baseline_fig1.placements) == set(fig1.node_ids())

    def test_loads_on_memory_tiles(self, baseline_fig1, fig1, cgra44):
        for node in fig1.memory_nodes():
            tile = baseline_fig1.placements[node].tile
            assert cgra44.tile(tile).has_memory_access

    def test_all_levels_normal(self, baseline_fig1, cgra44):
        assert all(
            level is cgra44.dvfs.normal
            for level in baseline_fig1.tile_levels.values()
        )

    def test_deterministic(self, fig1, cgra44):
        a = map_baseline(fig1, cgra44)
        b = map_baseline(fig1, cgra44)
        assert a.to_dict() == b.to_dict()

    def test_too_small_fabric_rejected(self, fir_dfg):
        tiny = CGRA.build(1, 1, island_shape=(1, 1))
        with pytest.raises(MappingError):
            map_baseline(fir_dfg, tiny,
                         EngineConfig(max_ii=8))

    def test_memoryless_tile_restriction(self, fig1, cgra44):
        # Restricting to non-memory tiles must fail fast: the kernel
        # has a LOAD.
        with pytest.raises(MappingError, match="SPM"):
            map_baseline(fig1, cgra44,
                         EngineConfig(allowed_tiles=frozenset({5, 6})))

    def test_allowed_tiles_respected(self, fig1, cgra44):
        allowed = frozenset({0, 1, 4, 5, 8, 9, 12, 13})
        mapping = map_baseline(fig1, cgra44,
                               EngineConfig(allowed_tiles=allowed))
        used = {p.tile for p in mapping.placements.values()}
        assert used <= allowed
        for route in mapping.routes.values():
            assert set(route.path) <= allowed

    def test_empty_allowed_tiles_rejected(self, fig1, cgra44):
        with pytest.raises(MappingError):
            map_baseline(fig1, cgra44,
                         EngineConfig(allowed_tiles=frozenset()))

    def test_const_nodes_are_immediates(self, cgra44):
        b = DFGBuilder("imm")
        c = b.op(Opcode.CONST, name="c")
        x = b.op(Opcode.LOAD)
        y = b.op(Opcode.ADD, c, x)
        b.op(Opcode.STORE, y)
        dfg = b.build()
        mapping = map_baseline(dfg, cgra44)
        assert c not in mapping.placements
        validate_mapping(mapping)


class TestDVFSAware:
    def test_fig1_iced_validates(self, iced_fig1):
        validate_mapping(iced_fig1)
        assert iced_fig1.strategy == "iced"

    def test_unused_islands_gated(self, iced_fig1, cgra44):
        used_islands = {
            cgra44.island_of(p.tile).id
            for p in iced_fig1.placements.values()
        }
        for island in cgra44.islands:
            level = iced_fig1.island_levels[island.id]
            if island.id not in used_islands:
                # Never gated if a route crosses it, though.
                crossed = any(
                    t in iced_fig1.tiles_used()
                    for t in island.tile_ids
                )
                if not crossed:
                    assert level.is_gated

    def test_island_level_consistency(self, iced_fig1, cgra44):
        for island in cgra44.islands:
            level = iced_fig1.island_levels[island.id]
            for tile in island.tile_ids:
                assert iced_fig1.tile_levels[tile] is level

    def test_critical_nodes_on_fast_islands(self, iced_fig1, fig1, cgra44):
        from repro.dfg.analysis import critical_cycle_nodes
        for node in critical_cycle_nodes(fig1):
            tile = iced_fig1.placements[node].tile
            level = iced_fig1.tile_levels[tile]
            # Critical nodes must not run slower than the II allows:
            # their label is normal, so their island is normal.
            assert level is cgra44.dvfs.normal

    def test_no_performance_loss_vs_baseline(self, fig1, cgra44):
        base = map_baseline(fig1, cgra44)
        iced = map_dvfs_aware(fig1, cgra44)
        assert iced.ii <= base.ii + 1

    def test_deterministic(self, fig1, cgra44):
        a = map_dvfs_aware(fig1, cgra44)
        b = map_dvfs_aware(fig1, cgra44)
        assert a.to_dict() == b.to_dict()

    def test_per_tile_islands(self, fig1, cgra44):
        per_tile_fabric = cgra44.with_islands((1, 1))
        mapping = map_dvfs_aware(fig1, per_tile_fabric)
        validate_mapping(mapping)
        assert len(per_tile_fabric.islands) == 16

    def test_streaming_level_restriction(self, fig1, cgra44):
        mapping = map_dvfs_aware(
            fig1, cgra44,
            EngineConfig(dvfs_aware=True,
                         allowed_level_names=("normal", "relax")),
        )
        for level in mapping.tile_levels.values():
            assert level.name in ("normal", "relax", "power_gated")

    def test_kernel_suite_member(self, cgra66):
        mapping = map_dvfs_aware(load_kernel("histogram", 1), cgra66)
        validate_mapping(mapping)


class TestMapDfgFlagHandling:
    def test_map_dfg_baseline_by_default(self, fig1, cgra44):
        mapping = map_dfg(fig1, cgra44, EngineConfig())
        assert mapping.strategy == "baseline"

    def test_wrapper_flag_coercion(self, fig1, cgra44):
        # map_baseline forces dvfs_aware off even if the config says on.
        mapping = map_baseline(fig1, cgra44,
                               EngineConfig(dvfs_aware=True))
        assert mapping.strategy == "baseline"
        mapping = map_dvfs_aware(fig1, cgra44, EngineConfig())
        assert mapping.strategy == "iced"


class TestEngineStats:
    def test_hot_path_counters_nonzero(self, cgra66):
        from repro.mapper.engine import EngineStats

        stats = EngineStats()
        mapping = map_dfg(load_kernel("fir", 1), cgra66,
                          EngineConfig(dvfs_aware=True), stats=stats)
        validate_mapping(mapping)
        counters = stats.as_counters()
        # The memo serves at least every commit re-route, and the
        # oracle prunes at least some window-infeasible tiles on fir.
        assert counters["route_memo_hits"] > 0
        assert counters["route_memo_misses"] > 0
        assert counters["candidates_pruned"] > 0
        assert counters["routes_searched"] > 0
        # Every counter the pipeline surfaces is present and an int.
        for name, value in counters.items():
            assert isinstance(value, int), name
