"""Negative-path tests: hand-broken mappings must be *specifically*
rejected.

The disk cache and the parallel executor both lean on
``validate_mapping`` as the last line of defence — every rehydrated or
worker-produced artifact is revalidated before it is handed out. These
tests pin down that each class of corruption is caught, and caught
with the right diagnostic (a generic "something failed" would make
cache debugging hopeless).
"""

import copy
import dataclasses

import pytest

from repro.errors import ValidationError
from repro.mapper.mapping import Placement
from repro.mapper.validation import validate_mapping


def _editable(mapping):
    """A shallow clone whose dicts can be mutated independently."""
    clone = copy.copy(mapping)
    clone.placements = dict(mapping.placements)
    clone.routes = dict(mapping.routes)
    clone.tile_levels = dict(mapping.tile_levels)
    clone.island_levels = dict(mapping.island_levels)
    return clone


def _far_tile(cgra, anchor: int) -> int:
    """A tile that is not a neighbour of ``anchor`` (nor anchor itself)."""
    neighbours = set(cgra.neighbors(anchor))
    return max(
        t.id for t in cgra.tiles
        if t.id != anchor and t.id not in neighbours
    )


class TestDoubleBookedFU:
    def test_two_nodes_on_one_slot_rejected(self, baseline_fir):
        broken = _editable(baseline_fir)
        # Two nodes with the same opcode: the second is guaranteed to
        # be executable on the first's tile, so the *resource* check is
        # what fires, not an opcode-support check.
        by_opcode: dict = {}
        victim = donor = None
        for node_id in broken.placements:
            opcode = broken.dfg.node(node_id).opcode
            if opcode in by_opcode:
                donor, victim = by_opcode[opcode], node_id
                break
            by_opcode[opcode] = node_id
        assert victim is not None, "fixture has no two same-opcode nodes"
        source = broken.placements[donor]
        broken.placements[victim] = Placement(
            victim, source.tile, source.time
        )
        with pytest.raises(ValidationError, match="FU conflict"):
            validate_mapping(broken)


class TestBrokenRoute:
    def test_non_neighbour_hop_rejected(self, baseline_fir):
        broken = _editable(baseline_fir)
        idx, route = next(
            (i, r) for i, r in broken.routes.items() if len(r.path) >= 2
        )
        # Splice a far-away tile after the first hop: endpoints still
        # match the placements, but the first hop teleports.
        far = _far_tile(broken.cgra, route.path[0])
        broken.routes[idx] = dataclasses.replace(
            route, path=(route.path[0], far) + route.path[1:]
        )
        with pytest.raises(ValidationError, match="not neighbours"):
            validate_mapping(broken)

    def test_missing_route_rejected(self, baseline_fir):
        broken = _editable(baseline_fir)
        idx = next(iter(broken.routes))
        del broken.routes[idx]
        with pytest.raises(ValidationError, match="not routed"):
            validate_mapping(broken)

    def test_detached_endpoint_rejected(self, baseline_fir):
        broken = _editable(baseline_fir)
        idx, route = next(iter(broken.routes.items()))
        far = _far_tile(broken.cgra, route.path[-1])
        broken.routes[idx] = dataclasses.replace(
            route, path=route.path[:-1] + (far,)
        )
        with pytest.raises(ValidationError,
                           match="do not match placements"):
            validate_mapping(broken)


class TestIslandViolation:
    def test_tile_level_diverging_from_island_rejected(self, iced_fir):
        assert iced_fir.island_levels, "iced mapping must carry islands"
        broken = _editable(iced_fir)
        # Flip one tile to a level its island does not run at.
        island = broken.cgra.islands[0]
        expected = broken.island_levels[island.id]
        other = next(
            lvl for lvl in broken.cgra.dvfs.levels if lvl is not expected
        )
        broken.tile_levels[island.tile_ids[0]] = other
        with pytest.raises(ValidationError,
                           match="differs from its island's"):
            validate_mapping(broken)

    def test_missing_island_level_rejected(self, iced_fir):
        broken = _editable(iced_fir)
        del broken.island_levels[broken.cgra.islands[0].id]
        with pytest.raises(ValidationError, match="has no level"):
            validate_mapping(broken)


class TestFixturesStillValid:
    """The editable clone itself must not break a good mapping."""

    def test_clone_of_valid_mapping_validates(self, baseline_fir,
                                              iced_fir):
        for mapping in (baseline_fir, iced_fir):
            report = validate_mapping(_editable(mapping))
            assert report.ii == mapping.ii
