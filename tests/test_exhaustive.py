"""Tests for the exhaustive optimal mapper and the heuristic's gap."""

import pytest

from repro.arch import CGRA
from repro.dfg import DFGBuilder, Opcode
from repro.errors import MappingError
from repro.kernels import load_kernel
from repro.mapper import map_baseline, validate_mapping
from repro.mapper.exhaustive import map_exhaustive


def tiny_chain(n: int = 4):
    b = DFGBuilder("chain")
    prev = b.op(Opcode.LOAD)
    for _ in range(n - 2):
        prev = b.op(Opcode.ADD, prev)
    b.op(Opcode.STORE, prev)
    return b.build()


def tiny_recurrence():
    b = DFGBuilder("rec")
    phi, add = b.recurrence([Opcode.PHI, Opcode.ADD])
    ld = b.op(Opcode.LOAD)
    b.edge(ld, phi)
    b.op(Opcode.STORE, add)
    return b.build()


def diamond():
    b = DFGBuilder("diamond")
    ld = b.op(Opcode.LOAD)
    left = b.op(Opcode.ADD, ld)
    right = b.op(Opcode.MUL, ld)
    join = b.op(Opcode.SUB, left, right)
    b.op(Opcode.STORE, join)
    return b.build()


FABRIC = CGRA.build(3, 3, island_shape=(3, 3))


class TestExhaustive:
    @pytest.mark.parametrize("factory", [tiny_chain, tiny_recurrence,
                                         diamond])
    def test_finds_valid_minimum(self, factory):
        dfg = factory()
        mapping, stats = map_exhaustive(dfg, FABRIC)
        validate_mapping(mapping)
        assert stats.probes > 0
        # Optimality: no mapping exists at II - 1, by exhaustion.
        if mapping.ii > 1:
            with pytest.raises(MappingError):
                map_exhaustive(dfg, FABRIC, max_ii=mapping.ii - 1)

    def test_size_caps_enforced(self):
        with pytest.raises(MappingError, match="caps"):
            map_exhaustive(load_kernel("fir", 1), FABRIC)
        with pytest.raises(MappingError, match="caps"):
            map_exhaustive(tiny_chain(), CGRA.build(6, 6))

    def test_probe_budget_enforced(self):
        with pytest.raises(MappingError, match="probes"):
            map_exhaustive(diamond(), FABRIC, max_probes=1)

    @pytest.mark.parametrize("factory", [tiny_chain, tiny_recurrence,
                                         diamond])
    def test_heuristic_engine_matches_optimum(self, factory):
        """The production engine's II must equal the provable minimum
        on these instances (they are small enough to demand it)."""
        dfg = factory()
        optimal, _ = map_exhaustive(dfg, FABRIC)
        heuristic = map_baseline(dfg, FABRIC)
        assert heuristic.ii == optimal.ii

    def test_heuristic_gap_on_denser_instance(self):
        b = DFGBuilder("dense")
        lds = [b.op(Opcode.LOAD) for _ in range(2)]
        m1 = b.op(Opcode.MUL, lds[0], lds[1])
        m2 = b.op(Opcode.ADD, lds[0], m1)
        m3 = b.op(Opcode.SUB, m1, m2)
        b.op(Opcode.STORE, m3)
        dfg = b.build()
        optimal, _ = map_exhaustive(dfg, FABRIC)
        heuristic = map_baseline(dfg, FABRIC)
        assert heuristic.ii <= optimal.ii + 1
