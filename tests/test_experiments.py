"""Tests for the experiment harnesses (reduced instances).

Every table/figure harness must run, produce a well-formed result, and
exhibit the paper's qualitative shape on its reduced instance.
"""

import json

import pytest

from repro.experiments import ALL_EXPERIMENTS, ExperimentResult
from repro.experiments import (
    ablation_labeling,
    fig2,
    fig3,
    fig4,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig14,
    table1,
)

SMALL = ("fir", "spmv", "histogram")


def check_result(result: ExperimentResult):
    assert result.id
    assert result.table.rows
    rendered = result.render()
    assert result.id in rendered
    json.dumps(result.to_dict())


class TestTable1:
    def test_full_match(self):
        result = table1.run()
        check_result(result)
        assert result.data["mismatches"] == 0


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run(kernels=SMALL, sizes=(4, 6), unrolls=(1,))

    def test_shape(self, result):
        check_result(result)

    def test_utilization_drops_with_size(self, result):
        series = result.series["avg utilization (unroll 1)"]
        assert series[0] > series[-1]


class TestFig3:
    def test_walkthrough(self):
        result = fig3.run()
        check_result(result)
        powers = result.series["power_mw"]
        # Every DVFS variant beats the conventional mapping.
        assert all(p < powers[0] for p in powers[1:])


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(kernels=SMALL, size=8,
                        island_shapes=((2, 2), (4, 4), (8, 8)))

    def test_shape(self, result):
        check_result(result)

    def test_small_islands_fastest(self, result):
        geo = result.data["geomean"]
        assert geo["2x2"] >= geo["8x8"]
        assert geo["2x2"] >= geo["4x4"] - 1e-9


class TestFig8:
    def test_calibration(self):
        result = fig8.run()
        check_result(result)
        area = result.data["area_mm2"]
        fabric = sum(v for k, v in area.items() if k != "sram")
        assert fabric == pytest.approx(6.63, rel=0.02)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(kernels=SMALL, unrolls=(1,))

    def test_shape(self, result):
        check_result(result)

    def test_iced_improves_utilization(self, result):
        assert result.data["iced_u1"] > 1.5 * result.data["baseline_u1"]


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(kernels=SMALL, unrolls=(1,))

    def test_shape(self, result):
        check_result(result)

    def test_dvfs_levels_below_baseline(self, result):
        assert result.data["iced_u1"] < result.data["baseline_u1"]
        assert result.data["per_tile_dvfs_u1"] < result.data["baseline_u1"]


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11.run(kernels=SMALL, unrolls=(1,))

    def test_shape(self, result):
        check_result(result)

    def test_iced_beats_baseline_energy(self, result):
        assert result.data["iced_u1"] < result.data["baseline_u1"]

    def test_per_tile_overhead_visible(self, result):
        # Per-tile controllers cost ~30 %/tile: per-tile must not beat
        # ICED (it pays 4x the controllers).
        assert result.data["iced_u1"] < result.data["per_tile_dvfs_u1"]


class TestFig12:
    def test_levels_drop_with_size(self):
        result = fig12.run(kernels=("fir", "histogram"), sizes=(4, 6))
        check_result(result)
        assert result.series["iced"][-1] <= result.series["iced"][0] + 0.05


class TestFig14:
    def test_comparison_table(self):
        result = fig14.run(iterations=256)
        check_result(result)
        assert result.data["iced_mops"] > 0
        assert len(result.table.rows) >= 5


class TestAblations:
    def test_labeling_ablation(self):
        result = ablation_labeling.run(kernels=("fir", "histogram"))
        check_result(result)
        # Labels must stay within a sane band of the unlabeled arm:
        # large regressions would mean Algorithm 1 is actively broken.
        assert result.data["avg_gain"] >= 0.8
        assert result.notes


class TestRegistry:
    def test_all_registered(self):
        assert {"table1", "fig2", "fig3", "fig4", "fig8", "fig9", "fig10",
                "fig11", "fig12", "fig13", "fig14"} <= set(ALL_EXPERIMENTS)

    def test_cli_help(self):
        from repro.experiments.__main__ import main
        with pytest.raises(SystemExit):
            main(["--help"])

    def test_cli_runs_fig8(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out

    def test_cli_json(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["id"] == "fig8"
