"""End-to-end integration tests across subsystem boundaries.

Each test exercises a full pipeline: frontend program -> lowering ->
mapping -> bitstream / simulation / power, or kernel suite -> all three
evaluated designs -> the paper's orderings.
"""

import pytest

from repro import (
    CGRA,
    assign_per_tile_dvfs,
    average_dvfs_fraction,
    load_kernel,
    map_baseline,
    map_dvfs_aware,
    mapping_power,
    simulate_execution,
    utilization_stats,
    validate_mapping,
)
from repro.frontend import lower_kernel, run_kernel_ast, run_lowered_dfg
from repro.kernels.programs import conv1d_program
from repro.mapper.bitstream import generate_bitstream
from repro.mapper.timing import compute_timing
from repro.utils.rng import make_rng


class TestFrontendToFabric:
    """A real program all the way from source semantics to config words."""

    @pytest.fixture(scope="class")
    def flow(self):
        kernel = conv1d_program(n=12, k=3)
        rng = make_rng(9)
        memory = {
            name: rng.normal(size=size).tolist()
            for name, size in kernel.arrays.items()
        }
        lowered = lower_kernel(kernel, flatten=True)
        cgra = CGRA.build(6, 6)
        mapping = map_dvfs_aware(lowered.dfg, cgra)
        return kernel, memory, lowered, mapping

    def test_lowering_is_semantically_exact(self, flow):
        kernel, memory, lowered, _ = flow
        expected = run_kernel_ast(kernel, memory)
        actual = run_lowered_dfg(lowered, memory)
        assert actual.memory["y"] == pytest.approx(expected["y"])

    def test_mapping_validates(self, flow):
        *_, mapping = flow
        validate_mapping(mapping)

    def test_simulation_runs_whole_loop(self, flow):
        _, _, lowered, mapping = flow
        stats = simulate_execution(mapping, lowered.trip_count)
        assert stats.total_cycles >= lowered.trip_count * mapping.ii - \
            mapping.ii

    def test_bitstream_emits(self, flow):
        *_, mapping = flow
        bitstream = generate_bitstream(mapping)
        assert bitstream.words_used() > 0
        assert bitstream.ii == mapping.ii


class TestThreeDesignsOrdering:
    """The paper's section-V orderings on a full Table I kernel."""

    @pytest.fixture(scope="class")
    def designs(self):
        cgra = CGRA.build(6, 6)
        dfg = load_kernel("conv", 1)
        baseline = map_baseline(dfg, cgra)
        per_tile = assign_per_tile_dvfs(baseline)
        iced = map_dvfs_aware(dfg, cgra)
        return baseline, per_tile, iced

    def test_all_validate(self, designs):
        for mapping in designs:
            validate_mapping(mapping)

    def test_performance_preserved(self, designs):
        baseline, per_tile, iced = designs
        assert per_tile.ii == baseline.ii
        assert iced.ii <= baseline.ii + 1

    def test_dvfs_levels_ordering(self, designs):
        baseline, per_tile, iced = designs
        assert average_dvfs_fraction(per_tile) < 1.0
        assert average_dvfs_fraction(iced) < 1.0
        assert average_dvfs_fraction(baseline) == 1.0

    def test_utilization_ordering(self, designs):
        baseline, _per_tile, iced = designs
        base = utilization_stats(
            baseline, include_gated=True
        )
        aware = utilization_stats(iced)
        assert aware.average > base.average

    def test_power_ordering(self, designs):
        baseline, per_tile, iced = designs
        p_base = mapping_power(baseline).total_mw
        p_iced = mapping_power(iced).total_mw
        p_pt = mapping_power(per_tile).total_mw
        assert p_iced < p_base
        assert p_iced < p_pt

    def test_energy_efficiency_factor(self, designs):
        baseline, _pt, iced = designs
        ratio = (mapping_power(baseline).total_mw
                 / mapping_power(iced).total_mw)
        assert 1.05 < ratio < 3.0  # the paper's 1.32x neighbourhood


class TestCrossFabricPortability:
    """One kernel across fabric and island variations."""

    @pytest.mark.parametrize("size", [4, 5, 6])
    def test_sizes(self, size):
        mapping = map_dvfs_aware(load_kernel("relu", 1),
                                 CGRA.build(size, size))
        validate_mapping(mapping)

    @pytest.mark.parametrize("shape", [(1, 1), (2, 2), (2, 3), (6, 6)])
    def test_island_shapes(self, shape):
        cgra = CGRA.build(6, 6, island_shape=shape)
        mapping = map_dvfs_aware(load_kernel("relu", 1), cgra)
        validate_mapping(mapping)

    def test_unroll_2_full_flow(self):
        cgra = CGRA.build(6, 6)
        mapping = map_dvfs_aware(load_kernel("spmv", 2), cgra)
        report = validate_mapping(mapping)
        stats = simulate_execution(mapping, 64, report)
        assert stats.total_cycles > 0
        generate_bitstream(mapping)


class TestReportsAreConsistent:
    """Numbers reported by different paths must agree."""

    def test_simulator_matches_timing_busy(self, baseline_fir):
        report = compute_timing(baseline_fir)
        stats = simulate_execution(baseline_fir, 64, report)
        # In steady state the per-period busy slots of the simulator's
        # explicit replay equal the static reconstruction (the simulator
        # asserts this internally; verify the hook is exercised).
        assert stats.iterations == 64

    def test_power_uses_report_activity(self, baseline_fir):
        report = compute_timing(baseline_fir)
        a = mapping_power(baseline_fir, report=report).total_mw
        b = mapping_power(baseline_fir).total_mw
        assert a == pytest.approx(b)
