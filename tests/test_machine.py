"""Machine-level bitstream execution tests.

The machine sees only configuration words — no mapping, no DFG — so a
match against the AST interpreter validates the entire lowering chain:
frontend -> mapper -> bitstream generator -> machine.
"""

import pytest

from repro.arch import CGRA
from repro.errors import SimulationError
from repro.frontend import lower_kernel, run_kernel_ast
from repro.kernels.programs import (
    conv1d_program,
    dtw_band_program,
    fir_program,
    relu_program,
)
from repro.machine import run_bitstream
from repro.mapper import map_baseline, map_dvfs_aware
from repro.mapper.bitstream import bitstream_for_lowered
from repro.utils.rng import make_rng

#: Machine-executable programs: no cross-iteration memory aliasing (the
#: DFG IR carries no memory-ordering edges; see docs/mapping_model.md).
PROGRAMS = {
    "fir": lambda: fir_program(n=10, taps=3),
    "relu": lambda: relu_program(n=12),
    "conv1d": lambda: conv1d_program(n=8, k=2),
    "dtw_band": lambda: dtw_band_program(n=8),
}


def prepared(name, seed=0):
    kernel = PROGRAMS[name]()
    rng = make_rng(seed)
    memory = {
        arr: rng.normal(size=size).tolist()
        for arr, size in kernel.arrays.items()
    }
    return kernel, memory, lower_kernel(kernel, flatten=True)


class TestMachineExecution:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_baseline_bitstream_computes_reference(self, name):
        kernel, memory, lowered = prepared(name)
        expected = run_kernel_ast(kernel, memory)
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        bitstream = bitstream_for_lowered(mapping, lowered)
        result = run_bitstream(bitstream, memory, lowered.trip_count)
        for array in kernel.arrays:
            assert result.memory[array] == pytest.approx(
                expected[array]
            ), f"array {array!r} diverged for {name}"

    @pytest.mark.parametrize("name", ["fir", "relu"])
    def test_iced_bitstream_computes_reference(self, name):
        kernel, memory, lowered = prepared(name, seed=7)
        expected = run_kernel_ast(kernel, memory)
        mapping = map_dvfs_aware(lowered.dfg, CGRA.build(6, 6))
        bitstream = bitstream_for_lowered(mapping, lowered)
        result = run_bitstream(bitstream, memory, lowered.trip_count)
        for array in kernel.arrays:
            assert result.memory[array] == pytest.approx(expected[array])

    def test_issue_and_send_counts(self):
        _, memory, lowered = prepared("fir")
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        bitstream = bitstream_for_lowered(mapping, lowered)
        result = run_bitstream(bitstream, memory, lowered.trip_count)
        placed = len(mapping.placements)
        assert result.issues == placed * lowered.trip_count
        assert result.sends > 0
        assert result.queue_high_water >= 1

    def test_cycle_count_near_static_prediction(self):
        _, memory, lowered = prepared("fir")
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        bitstream = bitstream_for_lowered(mapping, lowered)
        result = run_bitstream(bitstream, memory, lowered.trip_count)
        static = (lowered.trip_count - 1) * mapping.ii \
            + mapping.schedule_depth()
        # Elastic execution may drain slightly past the static estimate
        # but must stay within a couple of periods of it.
        assert result.cycles <= static + 3 * mapping.ii
        assert result.cycles >= (lowered.trip_count - 1) * mapping.ii

    def test_predicated_stores_counted(self):
        kernel, memory, lowered = prepared("relu", seed=3)
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        bitstream = bitstream_for_lowered(mapping, lowered)
        result = run_bitstream(bitstream, memory, lowered.trip_count)
        # relu writes through one of two predicated stores per element.
        assert result.stores_committed >= lowered.trip_count
        assert result.stores_predicated_off > 0

    def test_zero_iterations(self):
        _, memory, lowered = prepared("fir")
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        bitstream = bitstream_for_lowered(mapping, lowered)
        result = run_bitstream(bitstream, memory, 0)
        assert result.cycles == 0 and result.issues == 0

    def test_missing_memory_rejected(self):
        _, memory, lowered = prepared("fir")
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        bitstream = bitstream_for_lowered(mapping, lowered)
        del memory["h"]
        with pytest.raises(SimulationError, match="missing"):
            run_bitstream(bitstream, memory, 4)

    def test_sabotaged_send_stalls_loudly(self):
        # Drop one send from the image: the machine must detect the
        # starvation instead of silently producing wrong data.
        _, memory, lowered = prepared("fir")
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        bitstream = bitstream_for_lowered(mapping, lowered)
        for slots in bitstream.words.values():
            for word in slots:
                if word.sends:
                    word.sends.pop()
                    with pytest.raises(SimulationError, match="stalled"):
                        run_bitstream(bitstream, memory, 4,
                                      max_cycles=2000)
                    return
        pytest.skip("no sends to sabotage")


class TestMemoryOrdering:
    """Aliasing kernels need explicit memory-ordering edges to run on
    the elastic machine; the lowering option provides them."""

    def _setup(self):
        from repro.kernels.programs import histogram_program
        kernel = histogram_program(n=24, bins=4)
        rng = make_rng(11)
        memory = {
            "data": [float(abs(int(v * 10))) for v in rng.normal(size=24)],
            "hist": [0.0] * 4,
        }
        return kernel, memory

    def test_ordered_lowering_adds_edges(self):
        kernel, _memory = self._setup()
        plain = lower_kernel(kernel, flatten=True)
        ordered = lower_kernel(kernel, flatten=True, memory_ordering=True)
        assert ordered.dfg.num_edges > plain.dfg.num_edges

    def test_interpreter_unaffected_by_ordering_edges(self):
        kernel, memory = self._setup()
        expected = run_kernel_ast(kernel, memory)
        ordered = lower_kernel(kernel, flatten=True, memory_ordering=True)
        from repro.frontend import run_lowered_dfg
        out = run_lowered_dfg(ordered, memory)
        assert out.memory["hist"] == expected["hist"]

    def test_histogram_on_machine(self):
        kernel, memory = self._setup()
        expected = run_kernel_ast(kernel, memory)
        ordered = lower_kernel(kernel, flatten=True, memory_ordering=True)
        mapping = map_baseline(ordered.dfg, CGRA.build(6, 6))
        bitstream = bitstream_for_lowered(mapping, ordered)
        result = run_bitstream(bitstream, memory, ordered.trip_count)
        assert result.memory["hist"] == expected["hist"]

    def test_non_aliasing_kernel_unchanged(self):
        kernel = PROGRAMS["fir"]()
        plain = lower_kernel(kernel, flatten=True)
        ordered = lower_kernel(kernel, flatten=True, memory_ordering=True)
        # fir reads x/h and writes y: no read of a written array, so at
        # most the cross-iteration y edge appears; RecMII must not blow up.
        from repro.dfg import rec_mii
        assert rec_mii(ordered.dfg) <= rec_mii(plain.dfg) + 1
