"""Tests for the Dijkstra router over the time-extended MRRG."""

import pytest

from repro.mrrg import MRRG, link_key, reg_key, xbar_key
from repro.mapper.routing import find_route, route_arrival, route_claims


def normal(_tile: int) -> int:
    return 1


@pytest.fixture
def mrrg(cgra44):
    return MRRG(cgra44, ii=4)


class TestFindRoute:
    def test_same_tile(self, mrrg):
        result, probe = find_route(mrrg, normal, 5, 3, 5, 7)
        assert result is not None
        assert result.path == (5,)
        assert result.depart == 3
        assert probe == 3

    def test_adjacent_hop(self, mrrg):
        result, _ = find_route(mrrg, normal, 0, 0, 1, 4)
        assert result is not None
        assert result.path == (0, 1)
        assert result.arrival == 1

    def test_shortest_path_length(self, mrrg, cgra44):
        result, _ = find_route(mrrg, normal, 0, 0, 15, 10)
        assert result is not None
        assert len(result.path) - 1 == cgra44.distance(0, 15)
        assert result.arrival == cgra44.distance(0, 15)

    def test_deadline_too_tight_probe(self, mrrg):
        # With a probing horizon, the router reports the earliest
        # possible arrival beyond the deadline so the engine can jump
        # its issue time by the shortfall.
        result, probe = find_route(mrrg, normal, 0, 0, 15, 3, horizon=12)
        assert result is None
        assert probe is not None and probe >= 6

    def test_deadline_before_ready(self, mrrg):
        result, probe = find_route(mrrg, normal, 0, 5, 1, 4)
        assert result is None and probe is None

    def test_busy_link_detour(self, mrrg):
        # Block the direct 0->1 link at every slot; the router must
        # detour (0 -> 4 -> 5 -> 1) or wait.
        for slot in range(4):
            mrrg.pool.claim(link_key(0, 1), slot, 1)
        result, _ = find_route(mrrg, normal, 0, 0, 1, 8)
        assert result is not None
        assert result.path != (0, 1)
        assert route_arrival(result.path, result.depart, normal) \
            == result.arrival

    def test_slow_destination_stretches_hop(self, mrrg):
        slow = {1: 4}
        result, _ = find_route(
            mrrg, lambda t: slow.get(t, 1), 0, 0, 1, 8
        )
        assert result is not None
        assert result.arrival == 4

    def test_source_wait_when_blocked_early(self, mrrg):
        # Link busy at slots 0..1 only; waiting 2 cycles then hopping.
        mrrg.pool.claim(link_key(0, 1), 0, 2)
        result, _ = find_route(mrrg, normal, 0, 0, 1, 8)
        assert result is not None
        assert result.arrival <= 8

    def test_dst_registers_full_forces_just_in_time(self, mrrg, cgra44):
        # With the destination registers saturated, the only feasible
        # route delivers exactly at the deadline (no buffering needed).
        cap = cgra44.tile(1).num_registers
        mrrg.pool.claim(reg_key(1), 0, 4 * cap)
        result, _ = find_route(mrrg, normal, 0, 0, 1, 3)
        assert result is not None
        assert result.arrival == 3  # just-in-time delivery
        # If even just-in-time cannot work (deadline = ready), fail.
        blocked, _ = find_route(mrrg, normal, 2, 0, 1, 0)
        assert blocked is None


class TestRouteClaims:
    def test_multi_hop_claims(self):
        claims = route_claims((0, 1, 2), ready=0, depart=0, deadline=4,
                              slowdown_of=normal)
        keys = [c[0] for c in claims]
        assert link_key(0, 1) in keys
        assert link_key(1, 2) in keys
        assert xbar_key(1) in keys
        assert xbar_key(2) in keys
        # Arrival at 2, waits until the deadline in tile 2's registers.
        assert (reg_key(2), 2, 2) in claims

    def test_single_tile_claims(self):
        claims = route_claims((3,), ready=1, depart=1, deadline=5,
                              slowdown_of=normal)
        assert claims == [(reg_key(3), 1, 4)]

    def test_source_wait_claims(self):
        claims = route_claims((0, 1), ready=0, depart=2, deadline=3,
                              slowdown_of=normal)
        assert (reg_key(0), 0, 2) in claims

    def test_arrival_with_slowdowns(self):
        slow = {1: 2, 2: 4}.get
        assert route_arrival((0, 1, 2), 0, lambda t: slow(t, 1)) == 6


class TestSameTileProbe:
    """The self-route probe feeds the engine's issue-time jump: it must
    report the feasibility frontier, not just ``ready``."""

    def test_read_before_ready_reports_ready(self, mrrg):
        # deadline < ready: infeasible, but the probe says when the
        # wait would become trivially feasible.
        result, probe = find_route(mrrg, normal, 5, 6, 5, 3)
        assert result is None
        assert probe == 6

    def test_blocked_wait_reports_latest_feasible_deadline(self, mrrg,
                                                           cgra44):
        # Saturate tile 5's registers from cycle 2 on (mod 4): a wait
        # starting at 0 stays feasible only through deadline 2.
        cap = cgra44.tile(5).num_registers
        for _ in range(cap):
            mrrg.pool.claim(reg_key(5), 2, 1)
        result, probe = find_route(mrrg, normal, 5, 0, 5, 8)
        assert result is None
        assert probe == 2
        # And the probe is exact: deadline 2 still routes.
        result, probe = find_route(mrrg, normal, 5, 0, 5, 2)
        assert result is not None
        assert probe == 0  # successful same-tile routes arrive at ready
