"""Tests for the compile-as-a-service daemon (``repro serve``).

Three layers, tested at the cheapest one that proves each contract:

* **service** — admission control, coalescing, priorities and graceful
  shutdown are exercised against :class:`CompileService` directly with
  a ``compile_fn`` test seam, so the assertions are exact (N identical
  submissions -> exactly one execution) and fast;
* **pipeline** — one real compile through the service must be
  byte-identical to a direct :func:`compile_kernel` call;
* **HTTP** — a real :class:`BackgroundServer` over real sockets:
  endpoint routing, error statuses, concurrent coalesced POSTs and the
  deterministic load-test driver.
"""

import asyncio
import json
import threading
import time

import pytest

from repro import obs
from repro.compile import compile_kernel
from repro.serve import (
    BackgroundServer,
    CompileRequest,
    CompileService,
    LoadtestConfig,
    QueueFullError,
    RequestError,
    ServiceClosedError,
    StreamRequest,
    build_request_mix,
    canonical_json,
    loadtest,
)
from repro.serve.client import HTTPClient


@pytest.fixture
def registry():
    fresh = obs.MetricsRegistry()
    previous = obs.set_metrics(fresh)
    yield fresh
    obs.set_metrics(previous)


def run(coro, timeout_s: float = 60.0):
    """Drive one async test body on a fresh loop with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, timeout_s))


def request_for(kernel="fir", **overrides) -> CompileRequest:
    body = {"kernel": kernel, **overrides}
    return CompileRequest.from_dict(body)


class Seam:
    """A controllable stand-in for the pipeline compile.

    Records every executed request in order; optionally blocks each
    call on an event so tests can hold the workers busy while they
    shape the queue.
    """

    def __init__(self, gate: threading.Event | None = None):
        self.calls: list[CompileRequest] = []
        self.gate = gate
        self._lock = threading.Lock()

    def __call__(self, request) -> dict:
        with self._lock:
            self.calls.append(request)
        if self.gate is not None:
            assert self.gate.wait(30.0), "test gate never opened"
        return {"schema": 1, "request": request.to_dict(),
                "cache_hit": False}


# -- request validation -------------------------------------------------------


class TestRequestValidation:
    def test_defaults(self):
        req = CompileRequest.from_dict({"kernel": "fir"})
        assert req.strategy == "iced"
        assert req.backend == "engine"
        assert req.cgra == (6, 6) and req.island == (2, 2)
        assert req.priority == "batch"

    @pytest.mark.parametrize("body", [
        None,
        [],
        {},
        {"kernel": "no-such-kernel"},
        {"kernel": "fir", "strategy": "no-such-strategy"},
        {"kernel": "fir", "backend": "no-such-backend"},
        {"kernel": "fir", "priority": "urgent"},
        {"kernel": "fir", "unroll": 0},
        {"kernel": "fir", "unroll": "lots"},
        {"kernel": "fir", "cgra": "6by6"},
        {"kernel": "fir", "cgra": [6]},
        {"kernel": "fir", "cgra": "0x6"},
        {"kernel": "fir", "surprise": 1},
    ])
    def test_bad_compile_bodies_rejected(self, body):
        with pytest.raises(RequestError):
            CompileRequest.from_dict(body)

    def test_shape_spellings_agree(self):
        a = CompileRequest.from_dict({"kernel": "fir", "cgra": "4x4"})
        b = CompileRequest.from_dict({"kernel": "fir", "cgra": [4, 4]})
        assert a == b

    @pytest.mark.parametrize("body", [
        {},
        {"scenario": "no-such-scenario"},
        {"scenario": "bursty", "strategy": "nope"},
        {"scenario": "bursty", "inputs": 0},
        {"scenario": "bursty", "extra": True},
    ])
    def test_bad_stream_bodies_rejected(self, body):
        with pytest.raises(RequestError):
            StreamRequest.from_dict(body)


# -- fingerprints -------------------------------------------------------------


class TestFingerprint:
    def test_post_pass_inputs_split_the_engine_key(self, registry):
        """Strategies sharing an engine placement (and thus an engine
        cache key) must NOT share a coalescing fingerprint — the
        post-pass diverges."""
        service = CompileService(workers=1)
        gating = service.fingerprint(request_for(strategy="baseline+gating"))
        per_tile = service.fingerprint(request_for(strategy="per_tile_dvfs"))
        assert gating != per_tile
        seeded = service.fingerprint(request_for(strategy="baseline+gating",
                                                 seed=7))
        assert seeded != gating

    def test_priority_is_not_identity(self, registry):
        service = CompileService(workers=1)
        batch = service.fingerprint(request_for(priority="batch"))
        interactive = service.fingerprint(request_for(priority="interactive"))
        assert batch == interactive

    def test_stream_fingerprint_ignores_priority(self, registry):
        service = CompileService(workers=1)
        a = StreamRequest.from_dict({"scenario": "bursty",
                                     "priority": "batch"})
        b = StreamRequest.from_dict({"scenario": "bursty",
                                     "priority": "interactive"})
        assert service.fingerprint(a) == service.fingerprint(b)
        c = StreamRequest.from_dict({"scenario": "bursty", "inputs": 60})
        assert service.fingerprint(c) != service.fingerprint(a)


# -- coalescing ---------------------------------------------------------------


class TestCoalescing:
    def test_identical_burst_executes_once(self, registry):
        async def body():
            gate = threading.Event()
            seam = Seam(gate)
            service = CompileService(workers=2, compile_fn=seam)
            await service.start()
            try:
                futures = [service.submit(request_for()) for _ in range(8)]
                gate.set()
                outcomes = await asyncio.gather(*futures)
            finally:
                await service.shutdown()
            assert len(seam.calls) == 1
            payloads = {canonical_json(o) for o in outcomes}
            assert len(payloads) == 1, "waiters diverged"
            (outcome,) = [json.loads(p) for p in payloads]
            assert outcome["status"] == 200
            assert outcome["body"]["waiters"] == 8
            counters = registry.counters()
            assert counters["serve.requests"] == 8
            assert counters["serve.coalesced"] == 7
            assert counters["serve.compiles"] == 1

        run(body())

    def test_distinct_requests_do_not_coalesce(self, registry):
        async def body():
            gate = threading.Event()
            seam = Seam(gate)
            service = CompileService(workers=2, compile_fn=seam)
            await service.start()
            try:
                futures = [service.submit(request_for(seed=i))
                           for i in range(3)]
                gate.set()
                outcomes = await asyncio.gather(*futures)
            finally:
                await service.shutdown()
            assert len(seam.calls) == 3
            assert all(o["status"] == 200 for o in outcomes)
            assert registry.counters().get("serve.coalesced", 0) == 0

        run(body())

    def test_resolution_ends_the_coalescing_window(self, registry):
        async def body():
            seam = Seam()
            service = CompileService(workers=1, compile_fn=seam)
            await service.start()
            try:
                first = await service.submit(request_for())
                second = await service.submit(request_for())
            finally:
                await service.shutdown()
            # Same fingerprint, but the second arrived after the first
            # resolved: it must be a fresh job, not a stale payload.
            assert len(seam.calls) == 2
            assert (first["body"]["fingerprint"]
                    == second["body"]["fingerprint"])
            assert first["body"]["waiters"] == 1
            assert second["body"]["waiters"] == 1

        run(body())


# -- admission control --------------------------------------------------------


class TestAdmission:
    def test_queue_full_refuses_new_work(self, registry):
        async def body():
            gate = threading.Event()
            seam = Seam(gate)
            service = CompileService(workers=1, max_queue=2,
                                     retry_after_s=2.5, compile_fn=seam)
            await service.start()
            try:
                # Submitted back-to-back without yielding: the worker
                # never runs, so the heap holds exactly what we put in.
                futures = [service.submit(request_for(seed=0)),
                           service.submit(request_for(seed=1))]
                with pytest.raises(QueueFullError) as excinfo:
                    service.submit(request_for(seed=2))
                assert excinfo.value.retry_after_s == 2.5
                # A coalesced join never needs a queue slot.
                joined = service.submit(request_for(seed=0))
                gate.set()
                outcomes = await asyncio.gather(*futures, joined)
            finally:
                await service.shutdown()
            assert all(o["status"] == 200 for o in outcomes)
            counters = registry.counters()
            assert counters["serve.rejected"] == 1
            assert counters["serve.coalesced"] == 1

        run(body())

    def test_draining_service_refuses_everything(self, registry):
        async def body():
            service = CompileService(workers=1, compile_fn=Seam())
            await service.start()
            await service.shutdown()
            assert service.health()["status"] == "draining"
            with pytest.raises(ServiceClosedError):
                service.submit(request_for())

        run(body())

    def test_submit_before_start_is_an_error(self, registry):
        service = CompileService(workers=1, compile_fn=Seam())
        with pytest.raises(RuntimeError):
            service.submit(request_for())


# -- per-tenant quotas --------------------------------------------------------


class TestTenantQuota:
    def test_tenant_field_validation(self):
        req = CompileRequest.from_dict({"kernel": "fir",
                                        "tenant": "acme"})
        assert req.tenant == "acme"
        assert req.to_dict()["tenant"] == "acme"
        for bad in ["has space", "tab\there", 7, "x" * 129]:
            with pytest.raises(RequestError):
                CompileRequest.from_dict({"kernel": "fir", "tenant": bad})
            with pytest.raises(RequestError):
                StreamRequest.from_dict({"scenario": "bursty",
                                         "tenant": bad})

    def test_tenant_is_not_identity(self, registry):
        """Identical work coalesces across tenants: the tenant tag is
        quota accounting, not part of the computed result."""
        service = CompileService(workers=1)
        a = StreamRequest.from_dict({"scenario": "bursty",
                                     "tenant": "acme"})
        b = StreamRequest.from_dict({"scenario": "bursty",
                                     "tenant": "globex"})
        assert service.fingerprint(a) == service.fingerprint(b)

    def test_quota_refuses_the_flooding_tenant_only(self, registry):
        async def body():
            gate = threading.Event()
            seam = Seam(gate)
            service = CompileService(workers=1, max_queue=64,
                                     tenant_quota=2, retry_after_s=0.5,
                                     compile_fn=seam)
            await service.start()
            try:
                futures = [
                    service.submit(request_for(seed=0, tenant="acme")),
                    service.submit(request_for(seed=1, tenant="acme")),
                ]
                with pytest.raises(QueueFullError) as excinfo:
                    service.submit(request_for(seed=2, tenant="acme"))
                assert excinfo.value.retry_after_s == 0.5
                # Other tenants and anonymous requests are unaffected.
                futures.append(
                    service.submit(request_for(seed=3, tenant="globex")))
                futures.append(service.submit(request_for(seed=4)))
                assert service.health()["tenants_pending"] == {
                    "acme": 2, "globex": 1,
                }
                gate.set()
                outcomes = await asyncio.gather(*futures)
            finally:
                await service.shutdown()
            assert all(o["status"] == 200 for o in outcomes)
            counters = registry.counters()
            assert counters["serve.tenant_rejected"] == 1
            assert counters.get("serve.rejected", 0) == 0
            # Resolution released every slot.
            assert service.tenants_pending() == {}

        run(body())

    def test_coalesced_joins_consume_quota(self, registry):
        async def body():
            gate = threading.Event()
            seam = Seam(gate)
            service = CompileService(workers=1, tenant_quota=2,
                                     compile_fn=seam)
            await service.start()
            try:
                first = service.submit(request_for(tenant="acme"))
                joined = service.submit(request_for(tenant="acme"))
                assert joined is first  # one job, two pending responses
                with pytest.raises(QueueFullError):
                    service.submit(request_for(tenant="acme"))
                gate.set()
                outcome = await first
            finally:
                await service.shutdown()
            assert outcome["status"] == 200
            assert outcome["body"]["waiters"] == 2
            assert service.tenants_pending() == {}

        run(body())

    def test_quota_releases_after_resolution(self, registry):
        async def body():
            seam = Seam()
            service = CompileService(workers=1, tenant_quota=1,
                                     compile_fn=seam)
            await service.start()
            try:
                first = await service.submit(request_for(seed=0,
                                                         tenant="acme"))
                second = await service.submit(request_for(seed=1,
                                                          tenant="acme"))
            finally:
                await service.shutdown()
            assert first["status"] == 200 and second["status"] == 200
            assert len(seam.calls) == 2

        run(body())

    def test_health_reports_quota(self, registry):
        service = CompileService(workers=1, tenant_quota=8)
        health = service.health()
        assert health["tenant_quota"] == 8
        assert health["tenants_pending"] == {}
        assert CompileService(workers=1).health()["tenant_quota"] is None


# -- priorities ---------------------------------------------------------------


class TestPriorities:
    def test_interactive_overtakes_batch(self, registry):
        async def body():
            gate = threading.Event()
            seam = Seam(gate)
            service = CompileService(workers=1, compile_fn=seam)
            await service.start()
            try:
                # Everything lands in the queue before the single
                # worker runs; dequeue order is then priority-first,
                # FIFO within a class.
                futures = [
                    service.submit(request_for(seed=0, priority="batch")),
                    service.submit(request_for(seed=1, priority="batch")),
                    service.submit(request_for(seed=2,
                                               priority="interactive")),
                    service.submit(request_for(seed=3,
                                               priority="interactive")),
                ]
                gate.set()
                await asyncio.gather(*futures)
            finally:
                await service.shutdown()
            assert [r.seed for r in seam.calls] == [2, 3, 0, 1]

        run(body())


# -- graceful shutdown --------------------------------------------------------


class TestGracefulShutdown:
    def test_drain_resolves_every_admitted_request(self, registry):
        async def body():
            def slow(request):
                time.sleep(0.05)
                return {"schema": 1, "request": request.to_dict()}

            service = CompileService(workers=2, compile_fn=slow)
            await service.start()
            futures = [service.submit(request_for(seed=i))
                       for i in range(6)]
            await service.shutdown()
            assert all(f.done() for f in futures), "drain dropped work"
            outcomes = [f.result() for f in futures]
            assert all(o["status"] == 200 for o in outcomes)
            assert registry.counters()["serve.compiles"] == 6

        run(body())

    def test_errors_resolve_not_raise(self, registry):
        async def body():
            def boom(request):
                raise RuntimeError("pipeline exploded")

            service = CompileService(workers=1, compile_fn=boom)
            await service.start()
            try:
                outcome = await service.submit(request_for())
            finally:
                await service.shutdown()
            assert outcome["status"] == 500
            assert "pipeline exploded" in outcome["body"]["error"]
            assert registry.counters()["serve.errors"] == 1

        run(body())


# -- pipeline byte-identity ---------------------------------------------------


class TestPipelineIdentity:
    def test_served_compile_matches_direct_compile(self, registry,
                                                   cgra66):
        """The daemon answers with exactly the artifact ``repro map``
        would produce: same cache key, same mapping, byte for byte."""
        async def body():
            service = CompileService(workers=1)
            await service.start()
            try:
                outcome = await service.submit(request_for("fir"))
            finally:
                await service.shutdown()
            return outcome

        outcome = run(body(), timeout_s=300.0)
        assert outcome["status"] == 200
        served = outcome["body"]
        direct = compile_kernel("fir", cgra66, "iced")
        assert served["key"] == direct.cache_key
        assert served["ii"] == direct.report.ii
        assert (canonical_json(served["mapping"])
                == canonical_json(direct.mapping.to_dict()))


# -- HTTP layer ---------------------------------------------------------------


def post_json(server_url: str, path: str, body):
    async def go():
        async with HTTPClient(server_url, timeout_s=120.0) as client:
            return await client.post(path, body)

    return run(go(), timeout_s=150.0)


class TestHTTP:
    def test_endpoints_and_error_statuses(self, registry):
        with BackgroundServer(workers=1, compile_fn=Seam()) as server:
            async def go():
                async with HTTPClient(server.url) as client:
                    health = await client.get("/healthz")
                    stats = await client.get("/cache/stats")
                    missing = await client.get("/no/such/route")
                    wrong_method = await client.get("/compile")
                    bad_kernel = await client.post(
                        "/compile", {"kernel": "no-such-kernel"})
                    ok = await client.post("/compile", {"kernel": "fir"})
                    metrics = await client.get("/metrics")
                    return (health, stats, metrics, missing,
                            wrong_method, bad_kernel, ok)

            (health, stats, metrics, missing, wrong_method, bad_kernel,
             ok) = run(go())
        assert health[0] == 200 and health[2]["status"] == "ok"
        assert stats[0] == 200 and stats[2]["tier"] == "memory"
        assert metrics[0] == 200
        assert "serve.requests" in metrics[2]
        assert missing[0] == 404
        assert wrong_method[0] == 405
        assert bad_kernel[0] == 400
        assert "unknown kernel" in bad_kernel[2]["error"]
        assert ok[0] == 200
        assert ok[2]["fingerprint"]

    def test_malformed_json_and_framing(self, registry):
        with BackgroundServer(workers=1, compile_fn=Seam()) as server:
            async def probe():
                reader, writer = await asyncio.open_connection(
                    server.server.host, server.server.port)
                writer.write(b"POST /compile HTTP/1.1\r\n"
                             b"Host: x\r\nContent-Length: 8\r\n\r\n"
                             b"not json")
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                return status_line

            status_line = run(probe())
            assert b"400" in status_line

            async def no_length():
                reader, writer = await asyncio.open_connection(
                    server.server.host, server.server.port)
                writer.write(b"POST /compile HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                return status_line

            assert b"411" in run(no_length())

    def test_concurrent_identical_posts_coalesce(self, registry):
        gate = threading.Event()
        seam = Seam(gate)
        with BackgroundServer(workers=1, compile_fn=seam) as server:
            async def go():
                clients = [HTTPClient(server.url, timeout_s=60.0)
                           for _ in range(4)]
                for c in clients:
                    await c.connect()
                try:
                    tasks = [
                        asyncio.create_task(
                            c.post("/compile", {"kernel": "fir"}))
                        for c in clients
                    ]
                    # All four must be *submitted* (coalesced onto one
                    # job) before the compile is allowed to finish.
                    deadline = time.monotonic() + 10.0
                    registry_ = obs.metrics()
                    while (registry_.counter("serve.requests").value < 4
                           and time.monotonic() < deadline):
                        await asyncio.sleep(0.01)
                    gate.set()
                    return await asyncio.gather(*tasks)
                finally:
                    for c in clients:
                        await c.close()

            results = run(go())
        assert len(seam.calls) == 1
        statuses = {status for status, _, _ in results}
        assert statuses == {200}
        payloads = {canonical_json(payload) for _, _, payload in results}
        assert len(payloads) == 1, "coalesced waiters must match bytes"
        assert registry.counters()["serve.coalesced"] == 3

    def test_queue_full_gets_429_with_retry_after(self, registry):
        gate = threading.Event()
        seam = Seam(gate)
        try:
            with BackgroundServer(workers=1, max_queue=1,
                                  retry_after_s=3.0,
                                  compile_fn=seam) as server:
                async def go():
                    a = HTTPClient(server.url, timeout_s=60.0)
                    b = HTTPClient(server.url, timeout_s=60.0)
                    c = HTTPClient(server.url, timeout_s=60.0)
                    async with a, b, c:
                        first = asyncio.create_task(
                            a.post("/compile",
                                   {"kernel": "fir", "seed": 0}))
                        # Wait until the worker picked up the first job,
                        # then fill the single queue slot.
                        deadline = time.monotonic() + 10.0
                        while time.monotonic() < deadline:
                            _, _, health = await c.get("/healthz")
                            if (health["in_flight"] >= 1
                                    and health["queue_depth"] == 0):
                                break
                            await asyncio.sleep(0.01)
                        second = asyncio.create_task(
                            b.post("/compile",
                                   {"kernel": "fir", "seed": 1}))
                        while time.monotonic() < deadline:
                            _, _, health = await c.get("/healthz")
                            if health["queue_depth"] >= 1:
                                break
                            await asyncio.sleep(0.01)
                        status, headers, payload = await c.post(
                            "/compile", {"kernel": "fir", "seed": 2})
                        gate.set()
                        await asyncio.gather(first, second)
                        return status, headers, payload

                status, headers, payload = run(go())
        finally:
            gate.set()
        assert status == 429
        assert headers.get("retry-after") == "3"
        assert "full" in payload["error"]

    def test_draining_server_answers_503(self, registry):
        server = BackgroundServer(workers=1, compile_fn=Seam()).start()
        try:
            # Flip the service into draining while the listener is
            # still up: this is the window a load balancer sees during
            # a rolling restart.
            server.service._closing = True
            status, _, health = run(self._get(server.url, "/healthz"))
            assert status == 503
            assert health["status"] == "draining"
            status, _, payload = post_json(server.url, "/compile",
                                           {"kernel": "fir"})
            assert status == 503
            assert "draining" in payload["error"]
            server.service._closing = False
        finally:
            server.stop()

    @staticmethod
    async def _get(url, path):
        async with HTTPClient(url) as client:
            return await client.get(path)


# -- the load-test driver -----------------------------------------------------


class TestLoadtest:
    def test_request_mix_is_deterministic(self):
        config = LoadtestConfig(url="http://127.0.0.1:1", requests=50,
                                seed=7, kernels=("fir", "mvt"))
        again = build_request_mix(config)
        assert build_request_mix(config) == again
        assert len(again) == 50
        different = build_request_mix(
            LoadtestConfig(url="http://127.0.0.1:1", requests=50,
                           seed=8, kernels=("fir", "mvt")))
        assert different != again
        priorities = {body["priority"] for _, body in again}
        assert priorities == {"interactive", "batch"}
        assert {path for path, _ in again} == {"/compile"}

    def test_stream_fraction_mixes_in_stream_requests(self):
        config = LoadtestConfig(url="http://127.0.0.1:1", requests=40,
                                seed=3, stream_fraction=0.5,
                                scenarios=("bursty",))
        mix = build_request_mix(config)
        assert {path for path, _ in mix} == {"/compile", "/stream"}

    def test_loadtest_accounting_against_live_server(self, registry):
        seam = Seam()
        with BackgroundServer(workers=2, compile_fn=seam,
                              stream_fn=seam) as server:
            report = loadtest(LoadtestConfig(
                url=server.url, requests=40, concurrency=8, seed=0,
                kernels=("fir", "mvt"), strategies=("iced", "baseline"),
            ))
        assert report["requests_sent"] == 40
        assert report["ok"] == 40
        assert report["status_counts"] == {"200": 40}
        # Conservation: every admitted request either executed a job
        # or coalesced onto one.
        assert report["jobs_executed"] + report["coalesced"] == 40
        assert report["jobs_executed"] == len(seam.calls)
        assert report["unique_fingerprints"] <= 2 * 2  # kernels x strats
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        assert report["server"]["health"]["status"] == "ok"
