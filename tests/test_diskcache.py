"""Property and stress tests for the persistent on-disk mapping cache.

The disk cache's three contracts, adversarially exercised:

* **byte-stability** — save -> load -> save round-trips are
  byte-identical for arbitrary JSON payloads (hypothesis);
* **never serve garbage** — corrupted or truncated artifacts are
  quarantined and reported as misses, never raised (hypothesis over
  truncation points and envelope mutations);
* **never tear** — two processes hammering the same key concurrently
  never produce a reader-visible torn artifact.
"""

import json
import multiprocessing
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import (
    SCHEMA_VERSION,
    DiskCache,
    MappingCache,
    TieredCache,
)
from repro.compile.diskcache import ENV_CACHE_DIR, default_cache_root

# -- strategies ---------------------------------------------------------------

hex_keys = st.text(alphabet="0123456789abcdef", min_size=8, max_size=64)

json_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=10),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)
payloads = st.dictionaries(st.text(max_size=8), json_values, max_size=5)


def canon(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# -- properties ---------------------------------------------------------------


class TestRoundtrip:
    @settings(max_examples=30, deadline=None)
    @given(key=hex_keys, payload=payloads)
    def test_save_load_save_is_byte_stable(self, key, payload):
        with tempfile.TemporaryDirectory() as root:
            cache = DiskCache(root)
            blob = canon(payload)
            cache.store_serialized(key, blob)
            loaded = cache.load_blob(key)
            assert loaded == blob
            # Re-store what was loaded: the artifact file itself must
            # not change by a byte.
            artifact = cache._path(key)
            first = artifact.read_bytes()
            cache.store_serialized(key, loaded)
            assert cache._path(key).read_bytes() == first
            assert cache.load_blob(key) == blob

    @settings(max_examples=15, deadline=None)
    @given(key=hex_keys, payload=payloads)
    def test_artifact_envelope(self, key, payload):
        with tempfile.TemporaryDirectory() as root:
            cache = DiskCache(root)
            cache.store_serialized(key, canon(payload), kernel="k")
            envelope = json.loads(cache._path(key).read_text())
            assert envelope["schema"] == SCHEMA_VERSION
            assert envelope["key"] == key
            assert envelope["kernel"] == "k"
            assert canon(envelope["mapping"]) == canon(payload)


class TestCorruption:
    @settings(max_examples=30, deadline=None)
    @given(key=hex_keys, payload=payloads, cut=st.integers(min_value=1))
    def test_truncated_artifact_quarantined_not_crashed(
            self, key, payload, cut):
        with tempfile.TemporaryDirectory() as root:
            cache = DiskCache(root)
            cache.store_serialized(key, canon(payload))
            path = cache._path(key)
            raw = path.read_bytes()
            # A strict prefix of a canonical JSON object is never
            # valid JSON (the root object is unclosed).
            path.write_bytes(raw[: len(raw) - min(cut, len(raw))])
            assert cache.load_blob(key) is None
            assert not path.exists(), "corrupt artifact must move aside"
            assert cache.quarantined_count() == 1
            assert cache.stats.quarantined == 1
            # The key is usable again immediately.
            cache.store_serialized(key, canon(payload))
            assert cache.load_blob(key) == canon(payload)

    @settings(max_examples=20, deadline=None)
    @given(key=hex_keys, payload=payloads,
           garbage=st.binary(min_size=1, max_size=64))
    def test_binary_garbage_quarantined(self, key, payload, garbage):
        with tempfile.TemporaryDirectory() as root:
            cache = DiskCache(root)
            cache.store_serialized(key, canon(payload))
            path = cache._path(key)
            path.write_bytes(b"\x00" + garbage)  # never valid JSON
            assert cache.load_blob(key) is None
            assert cache.quarantined_count() == 1

    def test_schema_mismatch_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" * 16
        cache.store_serialized(key, canon({"x": 1}))
        path = cache._path(key)
        envelope = json.loads(path.read_text())
        envelope["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(envelope))
        assert cache.load_blob(key) is None
        assert cache.quarantined_count() == 1

    def test_misfiled_key_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store_serialized("ab" * 16, canon({"x": 1}))
        # Copy the artifact under a different key: the self-describing
        # envelope disagrees and the copy must not be served.
        other = "cd" * 16
        target = cache._path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(cache._path("ab" * 16).read_bytes())
        assert cache.load_blob(other) is None
        assert cache.quarantined_count() == 1
        assert cache.load_blob("ab" * 16) == canon({"x": 1})

    def test_unrehydratable_mapping_quarantined(self, tmp_path,
                                                fir_dfg, cgra66):
        cache = DiskCache(tmp_path)
        key = "ef" * 16
        cache.store_serialized(key, canon({"not": "a mapping"}))
        assert cache.lookup(key, fir_dfg, cgra66) is None
        assert cache.quarantined_count() == 1


# -- shards -------------------------------------------------------------------


class TestShards:
    """Per-server cache shards: private writes, read-through peers."""

    KEY = "ab" * 16

    def test_shard_writes_stay_in_its_subtree(self, tmp_path):
        shard = DiskCache(tmp_path, shard="api-0")
        shard.store_serialized(self.KEY, canon({"x": 1}))
        artifact = shard._path(self.KEY)
        assert artifact.is_relative_to(tmp_path / "shards" / "api-0")
        # The unsharded tree saw nothing.
        assert DiskCache(tmp_path).artifact_paths() == []
        assert shard.load_blob(self.KEY) == canon({"x": 1})
        assert shard.stats.peer_hits == 0

    def test_shard_reads_through_unsharded_tree(self, tmp_path):
        DiskCache(tmp_path).store_serialized(self.KEY, canon({"x": 1}))
        shard = DiskCache(tmp_path, shard="api-0")
        assert self.KEY in shard
        assert shard.load_blob(self.KEY) == canon({"x": 1})
        assert shard.stats.peer_hits == 1
        assert shard.stats.hits == 1

    def test_shards_read_each_other(self, tmp_path):
        writer = DiskCache(tmp_path, shard="api-0")
        writer.store_serialized(self.KEY, canon({"x": 1}), backend="engine")
        reader = DiskCache(tmp_path, shard="api-1")
        assert reader.load_blob(self.KEY, "engine") == canon({"x": 1})
        assert reader.stats.peer_hits == 1
        # Peer artifacts round-trip provenance too.
        assert reader.meta(self.KEY)["backend"] == "engine"
        # The unsharded reader also sees shard artifacts.
        agnostic = DiskCache(tmp_path)
        assert agnostic.load_blob(self.KEY) == canon({"x": 1})
        assert agnostic.stats.peer_hits == 1

    def test_own_tree_wins_over_peers(self, tmp_path):
        DiskCache(tmp_path, shard="api-0").store_serialized(
            self.KEY, canon({"from": "peer"}))
        mine = DiskCache(tmp_path, shard="api-1")
        mine.store_serialized(self.KEY, canon({"from": "me"}))
        assert mine.load_blob(self.KEY) == canon({"from": "me"})
        assert mine.stats.peer_hits == 0

    def test_corrupt_peer_is_skipped_never_quarantined(self, tmp_path):
        peer = DiskCache(tmp_path, shard="api-0")
        peer.store_serialized(self.KEY, canon({"x": 1}))
        peer._path(self.KEY).write_bytes(b"\x00garbage")
        reader = DiskCache(tmp_path, shard="api-1")
        assert reader.load_blob(self.KEY) is None
        assert reader.stats.misses == 1
        # Not ours to move: the peer's file stays exactly where it was.
        assert peer._path(self.KEY).read_bytes() == b"\x00garbage"
        assert reader.quarantined_count() == 0
        assert peer.quarantined_count() == 0

    def test_mismatched_peer_backend_is_a_plain_miss(self, tmp_path):
        peer = DiskCache(tmp_path, shard="api-0")
        peer.store_serialized(self.KEY, canon({"x": 1}), backend="exact")
        reader = DiskCache(tmp_path, shard="api-1")
        assert reader.load_blob(self.KEY, "engine") is None
        assert peer._path(self.KEY).exists()
        assert reader.load_blob(self.KEY, "exact") == canon({"x": 1})

    def test_housekeeping_never_crosses_shards(self, tmp_path):
        peer = DiskCache(tmp_path, shard="api-0")
        peer.store_serialized(self.KEY, canon({"x": 1}))
        mine = DiskCache(tmp_path, shard="api-1")
        mine.store_serialized("cd" * 16, canon({"y": 2}))
        assert len(mine) == 1
        assert mine.clear() == 1
        assert peer.load_blob(self.KEY) == canon({"x": 1})
        assert mine.gc(max_entries=0) == 0

    def test_stats_dict_reports_peer_hits(self, tmp_path):
        DiskCache(tmp_path).store_serialized(self.KEY, canon({"x": 1}))
        shard = DiskCache(tmp_path, shard="api-0")
        shard.load_blob(self.KEY)
        assert shard.stats_dict()["peer_hits"] == 1


class TestPeerScanMemoization:
    """The peer-shard directory listing is memoized per epoch: a burst
    of lookups costs one ``os.scandir``, not one per miss, and any own
    write (or a ``stats_dict`` poll) invalidates the memo."""

    KEY = "ab" * 16

    @staticmethod
    def _count_scandir(monkeypatch):
        calls = {"n": 0}
        real_scandir = os.scandir

        def counting_scandir(*args, **kwargs):
            calls["n"] += 1
            return real_scandir(*args, **kwargs)

        monkeypatch.setattr(os, "scandir", counting_scandir)
        return calls

    def test_one_scandir_per_lookup_burst(self, tmp_path, monkeypatch):
        peer = DiskCache(tmp_path, shard="api-0")
        peer.store_serialized(self.KEY, canon({"x": 1}))
        reader = DiskCache(tmp_path, shard="api-1")
        calls = self._count_scandir(monkeypatch)
        # A cold burst: one peer hit plus many misses on fresh keys.
        assert reader.load_blob(self.KEY) == canon({"x": 1})
        for i in range(50):
            assert reader.load_blob(f"{i:02x}" * 16) is None
        assert f"{7:02x}" * 16 not in reader
        assert calls["n"] == 1

    def test_own_write_invalidates_the_memo(self, tmp_path, monkeypatch):
        peer = DiskCache(tmp_path, shard="api-0")
        peer.store_serialized(self.KEY, canon({"x": 1}))
        reader = DiskCache(tmp_path, shard="api-1")
        calls = self._count_scandir(monkeypatch)
        assert reader.load_blob("cd" * 16) is None
        assert calls["n"] == 1
        reader.store_serialized("cd" * 16, canon({"y": 2}))
        assert reader.load_blob("ef" * 16) is None
        assert calls["n"] == 2
        # ... and the refreshed listing still serves peer artifacts.
        assert reader.load_blob(self.KEY) == canon({"x": 1})
        assert calls["n"] == 2

    def test_stats_poll_picks_up_newly_joined_peers(self, tmp_path):
        reader = DiskCache(tmp_path, shard="api-1")
        assert reader.load_blob(self.KEY) is None  # memoizes: no peers
        late_peer = DiskCache(tmp_path, shard="api-0")
        late_peer.store_serialized(self.KEY, canon({"x": 1}))
        # Stale memo: the reader does not see the new shard yet ...
        assert reader.load_blob(self.KEY) is None
        # ... until the next stats poll refreshes the epoch.
        reader.stats_dict()
        assert reader.load_blob(self.KEY) == canon({"x": 1})
        assert reader.stats.peer_hits == 1


# -- concurrency --------------------------------------------------------------


def _hammer(root: str, key: str, blob: str, n: int) -> None:
    cache = DiskCache(root)
    for _ in range(n):
        cache.store_serialized(key, blob)


def _cold_start(root: str, shard: str, barrier, n: int) -> None:
    """Simulate a daemon's cold start: construct the cache against a
    root that does not exist yet and immediately write through it —
    every process races the same directory creations."""
    cache = DiskCache(root, shard=shard)
    barrier.wait(timeout=30)
    for i in range(n):
        key = f"{i:02x}" * 16
        cache.store_serialized(key, canon({"shard": shard, "i": i}))
        assert cache.load_blob(key) is not None


class TestConcurrentWriters:
    def test_two_process_writers_never_tear(self, tmp_path):
        key = "77" * 16
        blob_a = canon({"writer": "a", "data": list(range(200))})
        blob_b = canon({"writer": "b", "data": list(range(200, 400))})
        reader = DiskCache(tmp_path)
        reader.store_serialized(key, blob_a)

        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        procs = [
            ctx.Process(target=_hammer,
                        args=(str(tmp_path), key, blob, 150))
            for blob in (blob_a, blob_b)
        ]
        for p in procs:
            p.start()
        seen = set()
        try:
            while any(p.is_alive() for p in procs):
                loaded = reader.load_blob(key)
                assert loaded in (blob_a, blob_b), "torn artifact served"
                seen.add(loaded)
        finally:
            for p in procs:
                p.join(timeout=60)
        for p in procs:
            assert p.exitcode == 0
        # Every read parsed: nothing was quarantined by the races.
        assert reader.stats.quarantined == 0
        final = reader.load_blob(key)
        assert final in (blob_a, blob_b)
        # No temp files leaked into the artifact tree.
        leftovers = [
            p for p in reader.version_dir.rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_two_process_cold_start_never_races_mkdir(self, tmp_path):
        """Two daemons starting simultaneously against a cache root
        that does not exist yet must both succeed: every directory
        creation on the write path is ``exist_ok`` end to end."""
        root = tmp_path / "fresh-root"  # deliberately not created
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_cold_start,
                        args=(str(root), shard, barrier, 25))
            for shard in ("api-0", "api-1")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        for p in procs:
            assert p.exitcode == 0, "cold-start writer crashed"
        # Both shards fully populated, readable through each other.
        reader = DiskCache(root, shard="api-0")
        assert len(reader) == 25
        assert reader.load_blob("18" * 16) is not None  # own
        fresh = DiskCache(root, shard="api-2")
        assert fresh.load_blob("18" * 16) is not None  # peer
        assert fresh.stats.peer_hits == 1


# -- tiering ------------------------------------------------------------------


class TestTieredCache:
    def test_disk_hit_promotes_to_memory(self, tmp_path, baseline_fir,
                                         fir_dfg, cgra66):
        key = "12" * 16
        disk = DiskCache(tmp_path)
        disk.store_serialized(key, canon(baseline_fir.to_dict()))
        tiered = TieredCache(MappingCache(), disk)
        mapping = tiered.lookup(key, fir_dfg, cgra66)
        assert mapping is not None
        assert mapping.ii == baseline_fir.ii
        assert tiered.memory.serialized(key) == canon(
            baseline_fir.to_dict()
        )
        # Second lookup is served by the memory tier.
        before = disk.stats.hits
        assert tiered.lookup(key, fir_dfg, cgra66) is not None
        assert disk.stats.hits == before

    def test_store_writes_through(self, tmp_path, baseline_fir):
        key = "34" * 16
        tiered = TieredCache(MappingCache(), DiskCache(tmp_path))
        tiered.store(key, baseline_fir)
        assert key in tiered.memory
        assert key in tiered.disk
        assert tiered.serialized(key) == canon(baseline_fir.to_dict())

    def test_stats_dict_has_both_tiers(self, tmp_path):
        tiered = TieredCache(MappingCache(), DiskCache(tmp_path))
        stats = tiered.stats_dict()
        for field in ("memory_hits", "disk_hits", "disk_quarantined",
                      "hits", "misses", "entries"):
            assert field in stats


# -- housekeeping -------------------------------------------------------------


class TestHousekeeping:
    def _seed(self, cache: DiskCache, count: int) -> list[str]:
        keys = [f"{i:02x}" * 16 for i in range(count)]
        for i, key in enumerate(keys):
            cache.store_serialized(key, canon({"i": i}))
            # Deterministic, strictly increasing write stamps.
            os.utime(cache._path(key), (1000.0 + i, 1000.0 + i))
        return keys

    def test_gc_keeps_newest(self, tmp_path):
        cache = DiskCache(tmp_path)
        keys = self._seed(cache, 5)
        assert cache.gc(max_entries=2) == 3
        assert len(cache) == 2
        survivors = {p.stem for p in cache.artifact_paths()}
        assert survivors == set(keys[-2:])
        assert cache.stats.evictions == 3

    def test_gc_age_horizon(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._seed(cache, 4)
        # Everything was stamped around t=1000: far past any horizon.
        assert cache.gc(max_age_s=3600.0) == 4
        assert len(cache) == 0

    def test_gc_noop_without_limits(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._seed(cache, 3)
        assert cache.gc() == 0
        assert len(cache) == 3

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._seed(cache, 3)
        cache._path("aa" * 16).parent.mkdir(parents=True, exist_ok=True)
        cache._path("aa" * 16).write_text("garbage")
        assert cache.load_blob("aa" * 16) is None  # -> quarantine
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.quarantined_count() == 0

    def test_stats_dict(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._seed(cache, 2)
        stats = cache.stats_dict()
        assert stats["entries"] == 2
        assert stats["stores"] == 2
        assert stats["bytes"] > 0
        assert stats["quarantine_files"] == 0

    def test_default_root_env_override(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert default_cache_root() == ".repro-cache"
        monkeypatch.setenv(ENV_CACHE_DIR, "/tmp/elsewhere")
        assert default_cache_root() == "/tmp/elsewhere"


# -- backend tags and schema migration ----------------------------------------


class TestBackendMigration:
    """Envelopes grew additive ``backend``/``optimal``/``cost``/``ii``
    fields. Legacy artifacts (written before the tag existed) must keep
    working exactly as before — as engine artifacts — and must never be
    served to a different backend's lookup."""

    KEY = "ab" * 16

    def test_legacy_untagged_artifact_serves_as_engine(self, tmp_path):
        cache = DiskCache(tmp_path)
        blob = canon({"kernel": "fir", "ii": 4})
        cache.store_serialized(self.KEY, blob)  # pre-tag writer
        envelope = json.loads(cache._path(self.KEY).read_text())
        assert "backend" not in envelope
        assert cache.load_blob(self.KEY) == blob          # agnostic reader
        assert cache.load_blob(self.KEY, "engine") == blob  # legacy == engine
        assert cache._path(self.KEY).exists()

    def test_legacy_artifact_quarantined_for_other_backend(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store_serialized(self.KEY, canon({"kernel": "fir"}))
        assert cache.load_blob(self.KEY, "exact") is None
        assert cache.stats.quarantined == 1
        assert not cache._path(self.KEY).exists()  # moved aside
        assert list(cache.quarantine_dir.iterdir())
        # Quarantine is terminal: even the rightful reader misses now.
        assert cache.load_blob(self.KEY, "engine") is None

    @settings(max_examples=20, deadline=None)
    @given(key=hex_keys, payload=payloads,
           tag=st.sampled_from(("engine", "anneal", "exact", "portfolio")))
    def test_tagged_artifact_served_only_to_its_backend(self, key,
                                                        payload, tag):
        with tempfile.TemporaryDirectory() as tmp:
            cache = DiskCache(tmp)
            cache.store_serialized(key, canon(payload), backend=tag)
            assert cache.load_blob(key, tag) == canon(payload)
            assert cache.load_blob(key) == canon(payload)  # agnostic
            other = "exact" if tag != "exact" else "engine"
            assert cache.load_blob(key, other) is None
            assert cache.stats.quarantined == 1

    def test_meta_round_trips_provenance_fields(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store_serialized(
            self.KEY, canon({"kernel": "relu"}), backend="exact",
            meta={"optimal": True, "cost": 25.0, "ii": 4},
        )
        assert cache.meta(self.KEY) == {
            "backend": "exact", "optimal": True, "cost": 25.0, "ii": 4,
        }
        assert cache.meta("cd" * 16) == {}

    def test_upgrade_best_replaces_only_strictly_better(self, tmp_path):
        cache = DiskCache(tmp_path)
        first = canon({"v": "incumbent"})
        assert cache.upgrade_best(self.KEY, first, backend="engine",
                                  ii=5, cost=40.0)
        # Equal rank and worse candidates leave the incumbent untouched.
        for ii, cost in ((5, 40.0), (5, 41.0), (6, 10.0)):
            assert not cache.upgrade_best(self.KEY, canon({"v": "worse"}),
                                          backend="anneal", ii=ii,
                                          cost=cost)
        assert cache.load_blob(self.KEY) == first
        assert "upgraded_from" not in cache.meta(self.KEY)
        # Same II but strictly cheaper wins, and provenance survives.
        better = canon({"v": "better"})
        assert cache.upgrade_best(self.KEY, better, backend="exact",
                                  ii=5, cost=25.0, optimal=True)
        assert cache.load_blob(self.KEY) == better
        meta = cache.meta(self.KEY)
        assert meta["backend"] == "exact" and meta["optimal"]
        assert meta["upgraded_from"] == {
            "backend": "engine", "ii": 5, "cost": 40.0,
        }

    def test_memory_cache_upgrade_best_matches_disk_semantics(self):
        cache = MappingCache()
        first = canon({"v": "incumbent"})
        assert cache.upgrade_best(self.KEY, first, backend="engine",
                                  ii=5, cost=40.0)
        assert not cache.upgrade_best(self.KEY, canon({"v": "worse"}),
                                      backend="anneal", ii=5, cost=40.0)
        assert cache.serialized(self.KEY) == first
        assert cache.upgrade_best(self.KEY, canon({"v": "better"}),
                                  backend="exact", ii=4, cost=99.0)
        meta = cache.meta(self.KEY)
        assert meta["ii"] == 4
        assert meta["upgraded_from"]["backend"] == "engine"

    def test_memory_lookup_respects_backend_tag(self, baseline_fir,
                                                fir_dfg, cgra66):
        cache = MappingCache()
        cache.store(self.KEY, baseline_fir, backend="exact")
        assert cache.lookup(self.KEY, fir_dfg, cgra66, "exact") is not None
        assert cache.lookup(self.KEY, fir_dfg, cgra66) is not None
        assert cache.lookup(self.KEY, fir_dfg, cgra66, "engine") is None

    def test_tiered_lookup_respects_backend_tag(self, tmp_path,
                                                baseline_fir, fir_dfg,
                                                cgra66):
        disk = DiskCache(tmp_path)
        disk.store_serialized(self.KEY, canon(baseline_fir.to_dict()),
                              backend="exact")
        tiered = TieredCache(MappingCache(), disk)
        assert tiered.lookup(self.KEY, fir_dfg, cgra66,
                             "engine") is None  # quarantined on disk
        fresh = TieredCache(MappingCache(), DiskCache(tmp_path))
        assert fresh.lookup(self.KEY, fir_dfg, cgra66, "exact") is None
