"""Tests for DFG analyses: recurrence cycles, MII bounds, orders."""

import pytest

from repro.dfg import DFGBuilder, Opcode
from repro.dfg.analysis import (
    asap_levels,
    critical_cycle_nodes,
    dfg_stats,
    height_levels,
    min_ii,
    rec_mii,
    recurrence_cycles,
    res_mii,
    topo_order,
)


def chain_with_cycle(cycle_len: int, dist: int = 1):
    b = DFGBuilder("t")
    ops = [Opcode.PHI] + [Opcode.ADD] * (cycle_len - 1)
    nodes = b.recurrence(ops, dist=dist)
    ld = b.op(Opcode.LOAD)
    b.edge(ld, nodes[0])
    st = b.op(Opcode.STORE, nodes[-1])
    return b.build(), nodes, ld, st


class TestRecurrenceCycles:
    def test_single_cycle(self):
        dfg, nodes, _, _ = chain_with_cycle(4)
        cycles = recurrence_cycles(dfg)
        assert len(cycles) == 1
        assert cycles[0].length == 4
        assert cycles[0].distance == 1
        assert cycles[0].mii == 4
        assert set(cycles[0].nodes) == set(nodes)

    def test_distance_two_halves_mii(self):
        dfg, _, _, _ = chain_with_cycle(4, dist=2)
        assert rec_mii(dfg) == 2

    def test_acyclic_mii_is_one(self):
        b = DFGBuilder("t")
        x = b.op(Opcode.LOAD)
        b.op(Opcode.STORE, x)
        assert rec_mii(b.build()) == 1

    def test_multiple_cycles_sorted_longest_first(self):
        b = DFGBuilder("t")
        b.recurrence([Opcode.PHI] + [Opcode.ADD] * 3)
        b.recurrence([Opcode.PHI, Opcode.ADD])
        dfg = b.build()
        cycles = recurrence_cycles(dfg)
        assert [c.length for c in cycles] == [4, 2]

    def test_parallel_edges_take_min_distance(self):
        b = DFGBuilder("t")
        a = b.op(Opcode.PHI)
        c = b.op(Opcode.ADD, a)
        b.edge(c, a, dist=2)
        b.edge(c, a, dist=1, port=1)
        dfg = b.build()
        assert rec_mii(dfg) == 2  # min distance 1 over 2 nodes

    def test_fig1_cycles(self, fig1):
        cycles = recurrence_cycles(fig1)
        lengths = sorted(c.length for c in cycles)
        assert lengths == [2, 4]
        assert rec_mii(fig1) == 4


class TestMIIBounds:
    def test_res_mii(self, fig1):
        assert res_mii(fig1, 16) == 1
        assert res_mii(fig1, 4) == 3
        assert res_mii(fig1, 1) == 11

    def test_res_mii_invalid(self, fig1):
        with pytest.raises(ValueError):
            res_mii(fig1, 0)

    def test_min_ii(self, fig1):
        assert min_ii(fig1, 16) == 4   # RecMII dominates
        assert min_ii(fig1, 1) == 11   # ResMII dominates


class TestCriticalNodes:
    def test_only_longest_cycle_is_critical(self, fig1):
        critical = critical_cycle_nodes(fig1)
        names = {fig1.node(n).label for n in critical}
        assert names == {"n1", "n4", "n7", "n9"}

    def test_acyclic_no_critical(self):
        b = DFGBuilder("t")
        x = b.op(Opcode.LOAD)
        b.op(Opcode.STORE, x)
        assert critical_cycle_nodes(b.build()) == set()


class TestOrders:
    def test_topo_respects_forward_edges(self, fig1):
        order = topo_order(fig1)
        position = {n: i for i, n in enumerate(order)}
        for edge in fig1.edges():
            if edge.dist == 0:
                assert position[edge.src] < position[edge.dst]

    def test_topo_covers_all_nodes(self, fig1):
        assert sorted(topo_order(fig1)) == fig1.node_ids()

    def test_asap_levels(self):
        dfg, nodes, ld, st = chain_with_cycle(3)
        levels = asap_levels(dfg)
        assert levels[ld] == 0
        assert levels[nodes[0]] == 1
        assert levels[st] == levels[nodes[-1]] + 1

    def test_height_levels(self):
        dfg, nodes, ld, st = chain_with_cycle(3)
        heights = height_levels(dfg)
        assert heights[st] == 0
        assert heights[ld] > heights[nodes[0]]


class TestStats:
    def test_stats(self, fig1):
        stats = dfg_stats(fig1)
        assert (stats.nodes, stats.edges, stats.rec_mii) == (11, 15, 4)
        assert stats.name == "fig1"
