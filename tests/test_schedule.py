"""Tests for the modulo-schedule difference-constraint solver."""

from repro.dfg import DFGBuilder, Opcode
from repro.mapper.schedule import modulo_schedule_times


def unit(_node: int) -> int:
    return 1


class TestModuloScheduleTimes:
    def test_chain_asap(self):
        b = DFGBuilder("chain")
        x = b.op(Opcode.LOAD)
        y = b.op(Opcode.ADD, x)
        z = b.op(Opcode.ADD, y)
        dfg = b.build()
        times = modulo_schedule_times(dfg, 4, unit)
        assert times[x] == 0 and times[y] == 1 and times[z] == 2

    def test_phi_pushed_late_by_back_edge(self):
        # phi -> a -> b -> (dist 1) -> phi, with b also fed by a long
        # chain: the phi must issue late enough for the cycle to close.
        b = DFGBuilder("late")
        phi = b.op(Opcode.PHI)
        a = b.op(Opcode.ADD, phi)
        chain = b.op(Opcode.LOAD)
        for _ in range(5):
            chain = b.op(Opcode.ADD, chain)
        closing = b.op(Opcode.ADD, a, chain)
        b.back_edge(closing, phi)
        dfg = b.build()
        ii = 4
        times = modulo_schedule_times(dfg, ii, unit)
        assert times is not None
        assert times[closing] + 1 <= times[phi] + ii
        assert times[phi] >= times[closing] + 1 - ii
        assert times[phi] > 0

    def test_infeasible_cycle_returns_none(self):
        b = DFGBuilder("tight")
        b.recurrence([Opcode.PHI] + [Opcode.ADD] * 5)  # 6 nodes, dist 1
        dfg = b.build()
        assert modulo_schedule_times(dfg, 4, unit) is None
        assert modulo_schedule_times(dfg, 6, unit) is not None

    def test_latency_function_respected(self):
        b = DFGBuilder("lat")
        x = b.op(Opcode.LOAD)
        y = b.op(Opcode.ADD, x)
        dfg = b.build()
        times = modulo_schedule_times(dfg, 8, lambda n: 4)
        assert times[y] == 4

    def test_transit_added(self):
        b = DFGBuilder("transit")
        x = b.op(Opcode.LOAD)
        y = b.op(Opcode.ADD, x)
        dfg = b.build()
        times = modulo_schedule_times(dfg, 8, unit, transit_of=lambda i: 3)
        assert times[y] == 4

    def test_floor_respected(self):
        b = DFGBuilder("floor")
        x = b.op(Opcode.LOAD)
        y = b.op(Opcode.ADD, x)
        dfg = b.build()
        times = modulo_schedule_times(dfg, 4, unit, floor={x: 5})
        assert times[x] == 5 and times[y] == 6

    def test_distance_relaxes_constraint(self):
        b = DFGBuilder("dist")
        x = b.op(Opcode.PHI)
        y = b.op(Opcode.ADD, x)
        b.back_edge(y, x, dist=3)
        dfg = b.build()
        times = modulo_schedule_times(dfg, 1, unit)
        # cycle latency 2 <= dist 3 * ii 1: feasible even at II = 1.
        assert times is not None
