"""Tests for the execution simulator and utilization metrics."""

import pytest

from repro.errors import SimulationError
from repro.mapper.timing import compute_timing
from repro.sim import (
    average_dvfs_fraction,
    simulate_execution,
    tile_utilization,
    utilization_stats,
)


class TestSimulator:
    def test_cycle_count_formula(self, baseline_fir, fir_report):
        stats = simulate_execution(baseline_fir, 100, fir_report)
        depth = baseline_fir.schedule_depth()
        assert stats.total_cycles == 99 * baseline_fir.ii + depth

    def test_zero_iterations(self, baseline_fir):
        stats = simulate_execution(baseline_fir, 0)
        assert stats.total_cycles == 0
        assert stats.throughput_iters_per_us == 0.0

    def test_negative_iterations_rejected(self, baseline_fir):
        with pytest.raises(SimulationError):
            simulate_execution(baseline_fir, -1)

    def test_steady_state_cross_check_runs(self, baseline_fir, fir_report):
        # 64 explicit iterations trigger the internal observed-vs-static
        # consistency check; it must pass silently.
        simulate_execution(baseline_fir, 64, fir_report)

    def test_extrapolation_matches_explicit_rate(self, baseline_fir,
                                                 fir_report):
        small = simulate_execution(baseline_fir, 64, fir_report)
        big = simulate_execution(baseline_fir, 10_000, fir_report)
        for tile, per64 in small.tile_busy_cycles.items():
            per_iter_small = per64 / 64
            per_iter_big = big.tile_busy_cycles[tile] / 10_000
            assert per_iter_big == pytest.approx(per_iter_small, rel=0.1)

    def test_execution_time_units(self, baseline_fir):
        stats = simulate_execution(baseline_fir, 434)
        # 434 iterations at f=434 MHz: about II microseconds.
        assert stats.execution_time_us == pytest.approx(
            baseline_fir.ii, rel=0.2
        )

    def test_busy_fraction_bounded(self, baseline_fir):
        stats = simulate_execution(baseline_fir, 200)
        for tile in baseline_fir.cgra.tiles:
            assert 0.0 <= stats.busy_fraction(tile.id) <= 1.0

    def test_iced_busy_includes_stretch(self, iced_fir):
        report = compute_timing(iced_fir)
        stats = simulate_execution(iced_fir, 128, report)
        slowed = [
            t for t, lv in iced_fir.tile_levels.items()
            if not lv.is_gated and lv.slowdown > 1
            and report.tile_busy.get(t, 0) > 0
        ]
        if not slowed:
            pytest.skip("no slowed busy tile")
        assert any(stats.tile_busy_cycles.get(t, 0) > 0 for t in slowed)


class TestUtilization:
    def test_gated_tiles_excluded(self, iced_fir):
        util = tile_utilization(iced_fir)
        for tile in iced_fir.gated_tiles():
            assert tile not in util

    def test_values_bounded(self, baseline_fir, fir_report):
        util = tile_utilization(baseline_fir, fir_report)
        assert all(0.0 <= u <= 1.0 for u in util.values())

    def test_baseline_average_includes_idle(self, baseline_fir, fir_report):
        with_idle = utilization_stats(baseline_fir, fir_report,
                                      include_gated=True)
        active_only = utilization_stats(baseline_fir, fir_report,
                                        include_gated=False)
        # Baseline has no gated tiles, but counting all 36 tiles still
        # drags the average below the active-only one.
        assert with_idle.average <= active_only.average

    def test_iced_beats_baseline(self, baseline_fir, iced_fir, fir_report):
        base = utilization_stats(baseline_fir, fir_report,
                                 include_gated=True)
        iced = utilization_stats(iced_fir)
        assert iced.average > base.average

    def test_stats_fields(self, iced_fir):
        stats = utilization_stats(iced_fir)
        assert stats.kernel == "fir"
        assert stats.strategy == "iced"
        assert stats.gated_tiles == len(iced_fir.gated_tiles())
        assert stats.active_tiles + stats.gated_tiles == 36

    def test_to_dict(self, iced_fir):
        d = utilization_stats(iced_fir).to_dict()
        assert {"kernel", "strategy", "ii", "average"} <= set(d)


class TestAverageDVFSFraction:
    def test_baseline_is_full_speed(self, baseline_fir):
        assert average_dvfs_fraction(baseline_fir) == 1.0

    def test_iced_below_baseline(self, iced_fir):
        assert average_dvfs_fraction(iced_fir) < 1.0

    def test_per_tile_is_lower_bound_side(self, per_tile_fir, iced_fir):
        # The per-tile assignment is at least as aggressive as islands
        # on the same kernel (it gates/fits per tile).
        assert average_dvfs_fraction(per_tile_fir) <= \
            average_dvfs_fraction(iced_fir) + 0.15
