"""Tests for loop unrolling and dead-node elimination."""

import pytest

from repro.dfg import DFGBuilder, Opcode, rec_mii, unroll
from repro.dfg.transforms import remove_dead_nodes
from repro.errors import DFGError


def simple_loop():
    b = DFGBuilder("loop")
    phi, add = b.recurrence([Opcode.PHI, Opcode.ADD])
    ld = b.op(Opcode.LOAD)
    b.edge(ld, phi)
    b.op(Opcode.STORE, add)
    return b.build()


class TestUnroll:
    def test_factor_one_is_copy(self):
        dfg = simple_loop()
        u = unroll(dfg, 1)
        assert u.num_nodes == dfg.num_nodes
        assert u is not dfg

    def test_node_and_edge_multiplication(self):
        dfg = simple_loop()
        u = unroll(dfg, 3)
        assert u.num_nodes == dfg.num_nodes * 3
        assert u.num_edges == dfg.num_edges * 3

    def test_serial_recurrence_mii_scales(self):
        dfg = simple_loop()
        assert rec_mii(dfg) == 2
        assert rec_mii(unroll(dfg, 2)) == 4
        assert rec_mii(unroll(dfg, 4)) == 8

    def test_distance_folding(self):
        # A dist-2 edge unrolled by 2 becomes a dist-1 edge between
        # matching copies.
        b = DFGBuilder("d2")
        phi = b.op(Opcode.PHI)
        add = b.op(Opcode.ADD, phi)
        b.edge(add, phi, dist=2)
        dfg = b.build()
        u = unroll(dfg, 2)
        dists = sorted(e.dist for e in u.edges())
        assert dists == [0, 0, 1, 1]

    def test_unrolled_graph_validates(self):
        u = unroll(simple_loop(), 4)
        u.validate()

    def test_bad_factor(self):
        with pytest.raises(DFGError):
            unroll(simple_loop(), 0)

    def test_names_tagged_by_copy(self):
        u = unroll(simple_loop(), 2)
        labels = [n.label for n in u.nodes()]
        assert any(label.endswith(".0") for label in labels)
        assert any(label.endswith(".1") for label in labels)


class TestDeadNodeElimination:
    def test_prunes_unreachable(self):
        b = DFGBuilder("dead")
        live_ld = b.op(Opcode.LOAD)
        b.op(Opcode.STORE, live_ld)
        dead = b.op(Opcode.ADD, live_ld)
        b.op(Opcode.MUL, dead)
        dfg = b.build()
        pruned = remove_dead_nodes(dfg)
        assert pruned.num_nodes == 2
        assert {n.opcode for n in pruned.nodes()} == {
            Opcode.LOAD, Opcode.STORE
        }

    def test_keeps_loop_carried_ancestors(self):
        b = DFGBuilder("rec")
        phi, add = b.recurrence([Opcode.PHI, Opcode.ADD])
        b.op(Opcode.STORE, add)
        dfg = b.build()
        pruned = remove_dead_nodes(dfg)
        assert pruned.num_nodes == 3

    def test_no_stores_returns_copy(self):
        b = DFGBuilder("nostore")
        x = b.op(Opcode.LOAD)
        b.op(Opcode.ADD, x)
        dfg = b.build()
        pruned = remove_dead_nodes(dfg)
        assert pruned.num_nodes == dfg.num_nodes

    def test_explicit_live_set(self):
        b = DFGBuilder("custom")
        x = b.op(Opcode.LOAD)
        y = b.op(Opcode.ADD, x)
        b.op(Opcode.MUL, x)
        dfg = b.build()
        pruned = remove_dead_nodes(dfg, live=[y])
        assert pruned.num_nodes == 2
