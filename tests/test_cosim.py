"""Tests for value-accurate co-simulation of mapped kernels."""

import pytest

from repro.arch import CGRA
from repro.errors import SimulationError
from repro.frontend import lower_kernel, run_kernel_ast
from repro.kernels.programs import (
    conv1d_program,
    fir_program,
    relu_program,
    spmv_program,
)
from repro.mapper import map_baseline, map_dvfs_aware
from repro.sim.cosim import cosimulate
from repro.utils.rng import make_rng

PROGRAMS = {
    "fir": lambda: fir_program(n=10, taps=3),
    "relu": lambda: relu_program(n=12),
    "conv1d": lambda: conv1d_program(n=8, k=2),
}


def prepared(name, seed=0):
    kernel = PROGRAMS[name]()
    rng = make_rng(seed)
    memory = {
        arr: rng.normal(size=size).tolist()
        for arr, size in kernel.arrays.items()
    }
    return kernel, memory, lower_kernel(kernel, flatten=True)


class TestCosimulation:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_baseline_mapping_computes_reference_results(self, name):
        kernel, memory, lowered = prepared(name)
        expected = run_kernel_ast(kernel, memory)
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        result = cosimulate(lowered, mapping, memory)
        for array in kernel.arrays:
            assert result.memory[array] == pytest.approx(expected[array])
        assert result.values_checked > 0

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_iced_mapping_computes_reference_results(self, name):
        kernel, memory, lowered = prepared(name, seed=4)
        expected = run_kernel_ast(kernel, memory)
        mapping = map_dvfs_aware(lowered.dfg, CGRA.build(6, 6))
        result = cosimulate(lowered, mapping, memory)
        for array in kernel.arrays:
            assert result.memory[array] == pytest.approx(expected[array])

    def test_indirect_access_kernel(self):
        kernel = spmv_program(rows=4, nnz_per_row=2)
        rng = make_rng(2)
        memory = {
            arr: rng.normal(size=size).tolist()
            for arr, size in kernel.arrays.items()
        }
        memory["col"] = [float(int(abs(v) * 10) % 4) for v in memory["col"]]
        lowered = lower_kernel(kernel, flatten=True)
        expected = run_kernel_ast(kernel, memory)
        mapping = map_dvfs_aware(lowered.dfg, CGRA.build(6, 6))
        result = cosimulate(lowered, mapping, memory)
        assert result.memory["y"] == pytest.approx(expected["y"])

    def test_wrong_dfg_rejected(self):
        _, memory, lowered = prepared("fir")
        _, _, other = prepared("relu")
        mapping = map_baseline(other.dfg, CGRA.build(6, 6))
        with pytest.raises(SimulationError, match="disagree"):
            cosimulate(lowered, mapping, memory)

    def test_cycle_count_reported(self):
        _, memory, lowered = prepared("fir")
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        result = cosimulate(lowered, mapping, memory)
        assert result.total_cycles >= (lowered.trip_count - 1) * mapping.ii

    def test_partial_iterations(self):
        _, memory, lowered = prepared("fir")
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        result = cosimulate(lowered, mapping, memory, iterations=5)
        assert result.iterations == 5

    def test_bank_accounting(self):
        _, memory, lowered = prepared("fir")
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        result = cosimulate(lowered, mapping, memory)
        # Every iteration loads x and h and (on wrap) stores y.
        assert result.memory_accesses >= 2 * lowered.trip_count
        assert 0.0 <= result.bank_conflict_rate <= 1.0
        assert result.bank_conflicts <= result.memory_accesses

    def test_corrupted_schedule_detected(self):
        # Move a consumer's issue time one iteration early: timing
        # validation itself should already reject it; if the corruption
        # is crafted to stay resource-consistent, the arrival check
        # fires instead. Either way cosimulate must raise.
        import copy
        from repro.errors import ValidationError
        from repro.mapper.mapping import Placement
        _, memory, lowered = prepared("fir")
        mapping = map_baseline(lowered.dfg, CGRA.build(6, 6))
        broken = copy.copy(mapping)
        broken.placements = dict(mapping.placements)
        # Pull the latest-issued node far earlier than its operands.
        victim = max(
            (n for n in broken.placements
             if lowered.dfg.in_edges(n)),
            key=lambda n: broken.placements[n].time,
        )
        old = broken.placements[victim]
        broken.placements[victim] = Placement(victim, old.tile, 0)
        with pytest.raises((SimulationError, ValidationError)):
            cosimulate(lowered, broken, memory)
