"""Tests for DVFS levels and configurations."""

import pytest

from repro.arch.dvfs import (
    DEFAULT_DVFS_CONFIG,
    DVFSConfig,
    DVFSLevel,
    NORMAL,
    POWER_GATED,
    RELAX,
    REST,
    scaled_config,
)
from repro.errors import ArchitectureError


class TestLevels:
    def test_paper_operating_points(self):
        assert (NORMAL.voltage, NORMAL.frequency_mhz) == (0.70, 434.0)
        assert (RELAX.voltage, RELAX.frequency_mhz) == (0.50, 217.0)
        assert (REST.voltage, REST.frequency_mhz) == (0.42, 108.5)

    def test_equation_1_frequency_ratios(self):
        assert NORMAL.frequency_mhz == 2 * RELAX.frequency_mhz
        assert NORMAL.frequency_mhz == 4 * REST.frequency_mhz

    def test_slowdowns(self):
        assert (NORMAL.slowdown, RELAX.slowdown, REST.slowdown) == (1, 2, 4)

    def test_gated_properties(self):
        assert POWER_GATED.is_gated
        assert POWER_GATED.speed_fraction == 0.0
        assert not NORMAL.is_gated

    def test_speed_fraction(self):
        assert NORMAL.speed_fraction == 1.0
        assert RELAX.speed_fraction == 0.5
        assert REST.speed_fraction == 0.25

    def test_at_least_as_fast_as(self):
        assert NORMAL.at_least_as_fast_as(REST)
        assert NORMAL.at_least_as_fast_as(NORMAL)
        assert not REST.at_least_as_fast_as(NORMAL)
        assert RELAX.at_least_as_fast_as(REST)

    def test_gated_comparisons(self):
        assert NORMAL.at_least_as_fast_as(POWER_GATED)
        assert not POWER_GATED.at_least_as_fast_as(NORMAL)
        assert POWER_GATED.at_least_as_fast_as(POWER_GATED)

    def test_negative_slowdown_rejected(self):
        with pytest.raises(ArchitectureError):
            DVFSLevel("bad", 0.5, 100.0, -1)

    def test_gated_level_must_be_zero(self):
        with pytest.raises(ArchitectureError):
            DVFSLevel("bad", 0.5, 0.0, 0)


class TestConfig:
    def test_default_levels(self):
        names = [lv.name for lv in DEFAULT_DVFS_CONFIG.levels]
        assert names == ["normal", "relax", "rest"]

    def test_normal_and_slowest(self):
        assert DEFAULT_DVFS_CONFIG.normal is NORMAL
        assert DEFAULT_DVFS_CONFIG.slowest is REST

    def test_level_named(self):
        assert DEFAULT_DVFS_CONFIG.level_named("relax") is RELAX
        assert DEFAULT_DVFS_CONFIG.level_named("power_gated") is POWER_GATED
        with pytest.raises(ArchitectureError):
            DEFAULT_DVFS_CONFIG.level_named("turbo")

    def test_slower_faster_clamped(self):
        cfg = DEFAULT_DVFS_CONFIG
        assert cfg.slower(NORMAL) is RELAX
        assert cfg.slower(REST) is REST
        assert cfg.faster(REST) is RELAX
        assert cfg.faster(NORMAL) is NORMAL

    def test_fraction_metric(self):
        cfg = DEFAULT_DVFS_CONFIG
        assert cfg.fraction(NORMAL) == 1.0
        assert cfg.fraction(RELAX) == 0.5
        assert cfg.fraction(REST) == 0.25
        assert cfg.fraction(POWER_GATED) == 0.0

    def test_level_for_slowdown(self):
        cfg = DEFAULT_DVFS_CONFIG
        assert cfg.level_for_slowdown(1) is NORMAL
        assert cfg.level_for_slowdown(2) is RELAX
        assert cfg.level_for_slowdown(3) is RELAX
        assert cfg.level_for_slowdown(4) is REST
        assert cfg.level_for_slowdown(100) is REST

    def test_unordered_levels_rejected(self):
        with pytest.raises(ArchitectureError):
            DVFSConfig(levels=(REST, NORMAL))

    def test_empty_rejected(self):
        with pytest.raises(ArchitectureError):
            DVFSConfig(levels=())

    def test_duplicate_names_rejected(self):
        dup = DVFSLevel("normal", 0.6, 217.0, 2)
        with pytest.raises(ArchitectureError):
            DVFSConfig(levels=(NORMAL, dup))

    def test_index_of_gated_rejected(self):
        with pytest.raises(ArchitectureError):
            DEFAULT_DVFS_CONFIG.index_of(POWER_GATED)


class TestScaledConfig:
    def test_matches_default_points(self):
        cfg = scaled_config(3)
        assert [lv.slowdown for lv in cfg.levels] == [1, 2, 4]
        assert cfg.levels[0].frequency_mhz == 434.0
        # Voltage fit passes within a few percent of the published pairs.
        assert abs(cfg.levels[1].voltage - 0.50) < 0.05
        assert abs(cfg.levels[2].voltage - 0.42) < 0.02

    def test_more_levels(self):
        cfg = scaled_config(5)
        assert len(cfg.levels) == 5
        assert cfg.slowest.slowdown == 16
        assert cfg.slowest.voltage >= 0.55 * 0.7 - 1e-9

    def test_single_level(self):
        cfg = scaled_config(1)
        assert len(cfg.levels) == 1
        assert cfg.normal.slowdown == 1

    def test_zero_rejected(self):
        with pytest.raises(ArchitectureError):
            scaled_config(0)
