"""Tests for the modulo resource pool and MRRG claim vocabulary."""

import pytest

from repro.errors import MappingError
from repro.mrrg import MRRG, ModuloResourcePool, fu_key, link_key, reg_key, xbar_key
from repro.mrrg.mrrg import hop_claims, op_claims, wait_claims


@pytest.fixture
def pool(cgra44):
    return ModuloResourcePool(cgra44, ii=4)


class TestPool:
    def test_capacities(self, pool, cgra44):
        assert pool.capacity(fu_key(0)) == 1
        assert pool.capacity(link_key(0, 1)) == 1
        assert pool.capacity(xbar_key(0)) == 4
        assert pool.capacity(reg_key(0)) == cgra44.tile(0).num_registers

    def test_unknown_kind(self, pool):
        with pytest.raises(MappingError):
            pool.capacity(("bogus", 0))

    def test_claim_and_used(self, pool):
        pool.claim(fu_key(0), 1, 1)
        assert pool.used(fu_key(0), 1) == 1
        assert pool.used(fu_key(0), 5) == 1  # modulo wrap
        assert pool.used(fu_key(0), 0) == 0

    def test_exclusive_conflict(self, pool):
        pool.claim(fu_key(0), 1, 1)
        assert not pool.is_free(fu_key(0), 1, 1)
        with pytest.raises(MappingError):
            pool.claim(fu_key(0), 5, 1)  # same slot mod 4

    def test_interval_wraps(self, pool):
        pool.claim(fu_key(0), 3, 2)  # slots 3 and 0
        assert pool.used(fu_key(0), 0) == 1
        assert pool.used(fu_key(0), 3) == 1
        assert pool.is_free(fu_key(0), 1, 2)

    def test_capacity_resource_stacks(self, pool):
        for _ in range(4):
            pool.claim(xbar_key(0), 0, 1)
        assert not pool.is_free(xbar_key(0), 0, 1)

    def test_long_claim_counts_multiplicity(self, pool):
        # Holding a register for 2*II cycles occupies 2 registers per slot.
        pool.claim(reg_key(0), 0, 8)
        assert pool.used(reg_key(0), 0) == 2

    def test_is_free_accounts_multiplicity(self, pool):
        cap = pool.capacity(reg_key(0))
        assert pool.is_free(reg_key(0), 0, 4 * cap)
        assert not pool.is_free(reg_key(0), 0, 4 * cap + 1)

    def test_rollback(self, pool):
        token = pool.checkpoint()
        pool.claim(fu_key(0), 0, 2)
        pool.claim(link_key(0, 1), 1, 1)
        pool.rollback(token)
        assert pool.used(fu_key(0), 0) == 0
        assert pool.is_free(link_key(0, 1), 1, 1)

    def test_nested_rollback(self, pool):
        pool.claim(fu_key(0), 0, 1)
        outer = pool.checkpoint()
        pool.claim(fu_key(1), 0, 1)
        inner = pool.checkpoint()
        pool.claim(fu_key(2), 0, 1)
        pool.rollback(inner)
        assert pool.used(fu_key(2), 0) == 0
        assert pool.used(fu_key(1), 0) == 1
        pool.rollback(outer)
        assert pool.used(fu_key(1), 0) == 0
        assert pool.used(fu_key(0), 0) == 1

    def test_zero_length_claim_is_noop(self, pool):
        pool.claim(fu_key(0), 0, 0)
        assert pool.used(fu_key(0), 0) == 0

    def test_sanity_cap(self, pool):
        with pytest.raises(MappingError):
            pool.claim(fu_key(0), 0, 10**6)

    def test_busy_slot_stats(self, pool):
        pool.claim(fu_key(0), 0, 2)
        pool.claim(xbar_key(0), 1, 2)
        assert pool.busy_slots(fu_key(0)) == 2
        assert pool.tile_busy_slots(0) == 3  # slots 0,1,2

    def test_bad_ii(self, cgra44):
        with pytest.raises(MappingError):
            ModuloResourcePool(cgra44, ii=0)


class TestClaimBuilders:
    def test_op_claims(self):
        assert op_claims(3, 5, 2) == [(fu_key(3), 5, 2)]

    def test_hop_claims(self):
        claims = hop_claims(0, 1, 4, 2)
        assert (link_key(0, 1), 4, 2) in claims
        assert (xbar_key(1), 4, 2) in claims

    def test_wait_claims(self):
        assert wait_claims(2, 5, 9) == [(reg_key(2), 5, 4)]
        assert wait_claims(2, 5, 5) == []
        assert wait_claims(2, 5, 3) == []


class TestMRRG:
    def test_atomic_claim_all(self, cgra44):
        mrrg = MRRG(cgra44, 4)
        claims = [(fu_key(0), 0, 1), (fu_key(0), 0, 1)]  # conflicts
        with pytest.raises(MappingError):
            mrrg.claim_all(claims)
        # Atomicity: the first claim must have been rolled back.
        assert mrrg.pool.used(fu_key(0), 0) == 0

    def test_is_free_handles_self_overlap(self, cgra44):
        mrrg = MRRG(cgra44, 4)
        cap = mrrg.pool.capacity(reg_key(0))
        overlapping = [(reg_key(0), 0, 4)] * cap
        assert mrrg.is_free(overlapping)
        assert not mrrg.is_free(overlapping + [(reg_key(0), 0, 1)])
        # And it must not leave anything claimed behind.
        assert mrrg.pool.used(reg_key(0), 0) == 0

    def test_to_networkx_shape(self, cgra44):
        mrrg = MRRG(cgra44, 3)
        g = mrrg.to_networkx()
        assert g.number_of_nodes() == 16 * 3
        # Each node has a self-register edge plus one per neighbour.
        out_deg = dict(g.out_degree())
        assert out_deg[("tile", 0, 0)] == 1 + 2
        assert out_deg[("tile", 5, 1)] == 1 + 4


class TestCongestionEpoch:
    """The Zobrist epoch is the route memo's invalidation key: it must
    track exactly the routing-visible occupancy (links, xbars,
    registers), ignore FU-only changes, and be order-independent."""

    def test_routing_visible_claim_bumps_epoch(self, pool):
        before = pool.epoch
        pool.claim(link_key(0, 1), 0, 2)
        assert pool.epoch != before

    def test_fu_claim_leaves_epoch_unchanged(self, pool):
        before = pool.epoch
        pool.claim(fu_key(3), 1, 2)
        assert pool.epoch == before

    def test_rollback_restores_epoch(self, pool):
        pool.claim(xbar_key(2), 0, 3)
        before = pool.epoch
        token = pool.checkpoint()
        pool.claim(reg_key(1), 2, 5)
        pool.claim(link_key(1, 2), 0, 1)
        assert pool.epoch != before
        pool.rollback(token)
        assert pool.epoch == before

    def test_epoch_is_order_independent(self, cgra44):
        a = ModuloResourcePool(cgra44, ii=4)
        b = ModuloResourcePool(cgra44, ii=4)
        claims = [(link_key(0, 1), 0, 2), (reg_key(5), 1, 3),
                  (xbar_key(2), 2, 2)]
        for key, start, length in claims:
            a.claim(key, start, length)
        for key, start, length in reversed(claims):
            b.claim(key, start, length)
        assert a.epoch == b.epoch

    def test_is_free_query_leaves_epoch_unchanged(self, pool, cgra44):
        mrrg = MRRG(cgra44, 4)
        before = mrrg.pool.epoch
        # is_free runs a scratch transaction; it must not leak epoch.
        assert mrrg.is_free([(reg_key(0), 0, 6), (link_key(0, 1), 0, 1)])
        assert mrrg.pool.epoch == before
