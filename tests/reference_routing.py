"""The pre-optimization reference router, kept verbatim for testing.

This is the plain Dijkstra ``find_route`` the optimized router in
:mod:`repro.mapper.routing` must agree with: no distance oracle, no
memo, no deadline-tight first pass, tuple-keyed states, occupancy read
through the pool's public API. The differential property suite runs
both on random fabrics and claims and requires identical answers; the
perf bench monkeypatches this implementation into the placement engine
to measure the hot-path speedup inside one process.

Behavioural differences, both deliberate:

* ``deadline < ready`` on a same-tile query: the reference returns
  ``(None, None)``; the optimized router returns ``(None, ready)`` so
  the engine can jump its issue time instead of crawling.
* a blocked same-tile wait: the reference reports ``(None, ready)``;
  the optimized router reports the latest deadline the source
  registers could actually hold the value for.

Everything else — success results, probes of src != dst queries — must
match exactly.
"""

from __future__ import annotations

import heapq

from repro.mapper.routing import RouteResult, SlowdownFn
from repro.mrrg.mrrg import MRRG, wait_claims
from repro.mrrg.resources import reg_key


def reference_find_route(mrrg: MRRG, slowdown_of: SlowdownFn,
                         src_tile: int, ready: int, dst_tile: int,
                         deadline: int, max_wait: int | None = None,
                         horizon: int | None = None,
                         **_ignored,
                         ) -> tuple[RouteResult | None, int | None]:
    """Earliest-arrival route search, unaccelerated.

    Accepts (and ignores) the optimized router's extra keyword
    arguments (``memo``, ``slow``) so it can be substituted for it.
    """
    if horizon is None:
        horizon = deadline
    horizon = max(horizon, deadline)
    if deadline < ready:
        return None, None
    pool = mrrg.pool

    if src_tile == dst_tile:
        if mrrg.is_free(wait_claims(src_tile, ready, deadline)):
            return RouteResult((src_tile,), ready, ready), ready
        return None, ready

    max_wait = deadline - ready if max_wait is None else min(
        max_wait, deadline - ready
    )
    max_wait = min(max_wait, 2 * mrrg.ii)

    ii = mrrg.ii
    num_tiles = mrrg.cgra.num_tiles
    slow = [slowdown_of(t) for t in range(num_tiles)]
    neighbors = mrrg.cgra._neighbors
    xbar_cap = pool.xbar_capacity
    used = pool.used

    # Seed states: depart after waiting w cycles in the source
    # registers; the wait's feasibility is monotone in w, so stop at
    # the first blocked prefix.
    heap: list[tuple[int, int, int]] = []  # (time, tile, depart)
    parents: dict[tuple[int, int], tuple[int, int] | None] = {}
    reg_src = reg_key(src_tile)
    reg_cap = pool.capacity(reg_src)
    for wait in range(max_wait + 1):
        if wait and used(reg_src, ready + wait - 1) >= reg_cap:
            break
        t = ready + wait
        state = (src_tile, t)
        if state not in parents:
            parents[state] = None
            heapq.heappush(heap, (t, src_tile, t))

    earliest_arrival: int | None = None
    settled: set[tuple[int, int]] = set()
    while heap:
        t, tile, depart = heapq.heappop(heap)
        state = (tile, t)
        if state in settled:
            continue
        settled.add(state)

        if tile == dst_tile:
            if earliest_arrival is None:
                earliest_arrival = t
            if t <= deadline and mrrg.is_free(
                wait_claims(dst_tile, t, deadline)
            ):
                return RouteResult(_reconstruct(parents, state), depart, t), t
            continue  # a later arrival may find free registers

        for neighbor in neighbors[tile]:
            s = slow[neighbor]
            arrive = t + s
            if arrive > horizon:
                continue
            nxt = (neighbor, arrive)
            if nxt in settled or nxt in parents:
                continue
            lkey = ("link", tile, neighbor)
            xkey = ("xbar", neighbor)
            blocked = False
            for step in range(t, arrive):
                slot = step % ii
                if used(lkey, slot) >= 1 or used(xkey, slot) >= xbar_cap:
                    blocked = True
                    break
            if blocked:
                continue
            parents[nxt] = state
            heapq.heappush(heap, (arrive, neighbor, depart))
    return None, earliest_arrival


def _reconstruct(parents: dict, state: tuple[int, int]) -> tuple[int, ...]:
    path = []
    current: tuple[int, int] | None = state
    while current is not None:
        path.append(current[0])
        current = parents[current]
    path.reverse()
    return tuple(path)
