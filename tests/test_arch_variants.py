"""Tests for fabric variants: topologies and heterogeneous FUs."""

import pytest

from repro.arch import CGRA
from repro.arch.fu import alu_fu
from repro.dfg import DFGBuilder, Opcode
from repro.errors import ArchitectureError
from repro.kernels import load_kernel
from repro.mapper import map_baseline, map_dvfs_aware, validate_mapping


class TestTopologies:
    def test_mesh_distance_is_manhattan(self):
        cgra = CGRA.build(4, 4)
        assert cgra.distance(0, 15) == 6
        assert cgra.distance(0, 3) == 3

    def test_torus_wraps(self):
        cgra = CGRA.build(4, 4, topology="torus")
        # Opposite edges are adjacent on a torus.
        assert 3 in cgra.neighbors(0)
        assert 12 in cgra.neighbors(0)
        assert cgra.distance(0, 3) == 1
        assert cgra.distance(0, 15) == 2

    def test_king_mesh_diagonals(self):
        cgra = CGRA.build(4, 4, topology="king")
        assert 5 in cgra.neighbors(0)
        assert cgra.distance(0, 15) == 3  # diagonal walk

    def test_unknown_topology_rejected(self):
        with pytest.raises(ArchitectureError):
            CGRA.build(4, 4, topology="hypercube")

    def test_neighbor_counts(self):
        mesh = CGRA.build(4, 4)
        torus = CGRA.build(4, 4, topology="torus")
        king = CGRA.build(4, 4, topology="king")
        assert len(mesh.neighbors(5)) == 4
        assert len(torus.neighbors(0)) == 4  # wrap restores full degree
        assert len(king.neighbors(5)) == 8

    @pytest.mark.parametrize("topology", ["torus", "king"])
    def test_mapping_on_alternative_topology(self, topology):
        cgra = CGRA.build(6, 6, topology=topology)
        mapping = map_dvfs_aware(load_kernel("relu", 1), cgra)
        validate_mapping(mapping)

    def test_richer_topology_never_hurts_ii(self):
        dfg = load_kernel("fir", 1)
        mesh_ii = map_baseline(dfg, CGRA.build(6, 6)).ii
        king_ii = map_baseline(
            dfg, CGRA.build(6, 6, topology="king")
        ).ii
        assert king_ii <= mesh_ii + 1  # more links, same or better

    def test_with_islands_preserves_topology(self):
        cgra = CGRA.build(4, 4, topology="torus")
        re_islanded = cgra.with_islands((1, 1))
        assert re_islanded.topology == "torus"
        assert 3 in re_islanded.neighbors(0)


class TestHeterogeneousFUs:
    def mul_kernel(self):
        b = DFGBuilder("mulk")
        a = b.op(Opcode.LOAD)
        c = b.op(Opcode.LOAD)
        m = b.op(Opcode.MUL, a, c)
        b.op(Opcode.STORE, m)
        return b.build()

    def test_alu_fu_capability(self):
        fu = alu_fu()
        assert fu.supports(Opcode.ADD)
        assert not fu.supports(Opcode.MUL)
        assert not fu.supports(Opcode.DIV)

    def test_mul_avoids_alu_only_tiles(self):
        # All non-memory tiles except tile 5 are ALU-only.
        alu_only = tuple(
            t for t in range(16) if t % 4 != 0 and t != 5
        )
        cgra = CGRA.build(4, 4, alu_only_tiles=alu_only)
        mapping = map_baseline(self.mul_kernel(), cgra)
        validate_mapping(mapping)
        mul_node = next(
            n.id for n in mapping.dfg.nodes() if n.opcode is Opcode.MUL
        )
        tile = mapping.placements[mul_node].tile
        assert cgra.tile(tile).supports(Opcode.MUL)
        assert tile not in alu_only

    def test_memory_columns_keep_full_capability(self):
        cgra = CGRA.build(4, 4, alu_only_tiles=(0, 4))
        # Memory columns override the ALU-only marking.
        assert cgra.tile(0).supports(Opcode.MUL)

    def test_out_of_range_rejected(self):
        with pytest.raises(ArchitectureError):
            CGRA.build(4, 4, alu_only_tiles=(99,))

    def test_unmappable_when_no_multiplier(self):
        alu_only = tuple(t for t in range(16) if t % 4 != 0)
        cgra = CGRA.build(4, 4, alu_only_tiles=alu_only)
        b = DFGBuilder("needs_div")
        x = b.op(Opcode.LOAD)
        y = b.op(Opcode.LOAD)
        d = b.op(Opcode.DIV, x, y)
        b.op(Opcode.STORE, d)
        dfg = b.build()
        # DIV only exists on memory tiles here; still mappable.
        mapping = map_baseline(dfg, cgra)
        validate_mapping(mapping)
