"""The fleet layer: placement registry, synthetic fleets, FleetSim
validation, SLO accounting and the `repro fleet` CLI.

The float-identity contract between the batched engine and the
sequential reference lives in ``test_fleet_differential.py``; this
file covers everything around it.
"""

import json

import pytest

from repro.errors import FleetError, PlacementError
from repro.fleet import (
    FabricInstance,
    FleetSim,
    FleetSpec,
    PlacementRequest,
    TenantSLO,
    TenantSpec,
    canonical_report,
    describe_placements,
    get_placement,
    place_tenants,
    placement_names,
    register_placement,
    render_fleet_summary,
    synthesize_fleet,
)


def requests(n, app="gcn", load=100.0):
    return [PlacementRequest(tenant_id=f"t{i:03d}", app=app,
                             load_hint=load) for i in range(n)]


def fabrics(n, failed=()):
    return [FabricInstance(fabric_id=i, failed=i in failed)
            for i in range(n)]


# -- the placement registry ---------------------------------------------------


class TestPlacementRegistry:
    def test_builtins_are_registered(self):
        assert {"random", "load_balanced", "topology_aware"} <= set(
            placement_names())
        assert placement_names() == sorted(placement_names())

    def test_describe_rows(self):
        rows = describe_placements()
        assert [r["name"] for r in rows] == placement_names()
        assert all(r["description"] for r in rows)

    def test_unknown_placement_lists_known_names(self):
        with pytest.raises(PlacementError, match="load_balanced"):
            get_placement("definitely-not-registered")

    @pytest.mark.parametrize("name", ["", "has space", "tab\tname"])
    def test_invalid_names_are_rejected(self, name):
        with pytest.raises(PlacementError, match="invalid"):
            register_placement(name, description="x")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(PlacementError, match="already registered"):
            @register_placement("random", description="again")
            def _clash(tenants, fabrics, seed):  # pragma: no cover
                return {}

    def test_placement_error_is_a_fleet_error(self):
        assert issubclass(PlacementError, FleetError)


class TestPlaceTenants:
    def test_duplicate_fabric_ids_are_rejected(self):
        bad = [FabricInstance(fabric_id=1), FabricInstance(fabric_id=1)]
        with pytest.raises(PlacementError, match="duplicate fabric_id"):
            place_tenants("random", requests(2), bad)

    def test_all_failed_is_an_error(self):
        with pytest.raises(PlacementError, match="no healthy fabrics"):
            place_tenants("random", requests(2), fabrics(2, failed={0, 1}))

    def test_empty_tenants_is_fine(self):
        assert place_tenants("random", [], fabrics(2)) == {}

    def test_strategy_must_cover_every_tenant(self):
        @register_placement("_test_partial", description="drops tenants")
        def _partial(tenants, fabrics, seed):
            return {tenants[0].tenant_id: fabrics[0].fabric_id}

        with pytest.raises(PlacementError, match="unassigned"):
            place_tenants("_test_partial", requests(2), fabrics(2))

    def test_strategy_must_use_healthy_fabrics(self):
        @register_placement("_test_rogue", description="uses failed ids")
        def _rogue(tenants, fabrics, seed):
            return {t.tenant_id: 99 for t in tenants}

        with pytest.raises(PlacementError, match="unavailable fabric 99"):
            place_tenants("_test_rogue", requests(2), fabrics(2))

    @pytest.mark.parametrize("name", ["random", "load_balanced",
                                      "topology_aware"])
    def test_failed_fabrics_are_excluded(self, name):
        assignment = place_tenants(name, requests(12),
                                   fabrics(4, failed={2}), seed=7)
        assert set(assignment) == {f"t{i:03d}" for i in range(12)}
        assert 2 not in set(assignment.values())

    @pytest.mark.parametrize("name", ["random", "load_balanced",
                                      "topology_aware"])
    def test_placement_is_seed_deterministic(self, name):
        a = place_tenants(name, requests(20), fabrics(5), seed=3)
        b = place_tenants(name, requests(20), fabrics(5), seed=3)
        assert a == b

    def test_load_balanced_spreads_evenly(self):
        assignment = place_tenants("load_balanced", requests(12),
                                   fabrics(4))
        counts = {}
        for fid in assignment.values():
            counts[fid] = counts.get(fid, 0) + 1
        assert set(counts.values()) == {3}

    def test_load_balanced_respects_load_hints(self):
        heavy = [PlacementRequest("heavy", "gcn", 1000.0)]
        light = [PlacementRequest(f"light{i}", "gcn", 1.0)
                 for i in range(4)]
        assignment = place_tenants("load_balanced", heavy + light,
                                   fabrics(2))
        heavy_fabric = assignment["heavy"]
        # Every light tenant dodges the fabric the heavy one saturates.
        assert all(assignment[f"light{i}"] != heavy_fabric
                   for i in range(4))

    def test_topology_aware_packs_apps_contiguously(self):
        mixed = (requests(8, app="gcn")
                 + [PlacementRequest(f"e{i:03d}", "enzyme", 100.0)
                    for i in range(8)])
        assignment = place_tenants("topology_aware", mixed, fabrics(8))
        gcn_span = {assignment[t.tenant_id] for t in mixed
                    if t.app == "gcn"}
        enzyme_span = {assignment[t.tenant_id] for t in mixed
                       if t.app == "enzyme"}
        assert not (gcn_span & enzyme_span)
        for span in (gcn_span, enzyme_span):
            ordered = sorted(span)
            assert ordered == list(range(ordered[0], ordered[-1] + 1))

    def test_topology_aware_more_apps_than_fabrics(self):
        mixed = [PlacementRequest(f"t{i}", f"app{i}", 10.0)
                 for i in range(5)]
        assignment = place_tenants("topology_aware", mixed, fabrics(2))
        assert set(assignment.values()) <= {0, 1}


# -- synthetic fleets ---------------------------------------------------------


class TestSynthesizeFleet:
    def test_determinism_and_cycling(self):
        a = synthesize_fleet(6, 3, scenarios=("enzyme", "bursty"),
                             strategies=("iced", "static"), seed=5)
        b = synthesize_fleet(6, 3, scenarios=("enzyme", "bursty"),
                             strategies=("iced", "static"), seed=5)
        assert a == b
        assert [t.scenario for t in a.tenants] == [
            "enzyme", "bursty"] * 3
        assert [t.strategy for t in a.tenants] == ["iced", "static"] * 3
        assert len({t.seed for t in a.tenants}) == 6

    def test_failed_fabrics_marked(self):
        spec = synthesize_fleet(4, 4, failed_fabrics=(1, 3))
        assert [f.failed for f in spec.fabrics] == [
            False, True, False, True]

    def test_validation(self):
        with pytest.raises(FleetError, match="at least one"):
            synthesize_fleet(0, 4)
        with pytest.raises(FleetError, match="unknown strategies"):
            synthesize_fleet(4, 2, strategies=("warp",))
        with pytest.raises(FleetError, match="unknown scenarios"):
            synthesize_fleet(4, 2, scenarios=("nope",))


# -- FleetSim validation ------------------------------------------------------


def tenant(tid="t0", **overrides):
    defaults = dict(scenario="enzyme", seed=1, inputs=30, window=10,
                    strategy="iced")
    defaults.update(overrides)
    return TenantSpec(tenant_id=tid, **defaults)


class TestFleetSimValidation:
    def test_empty_fleet(self):
        with pytest.raises(FleetError, match="no tenants"):
            FleetSim(FleetSpec(tenants=[], fabrics=fabrics(1)))

    def test_duplicate_tenant_ids(self):
        with pytest.raises(FleetError, match="duplicate tenant ids"):
            FleetSim(FleetSpec(tenants=[tenant(), tenant()],
                               fabrics=fabrics(1)))

    def test_unknown_strategy(self):
        with pytest.raises(FleetError, match="unknown strategy"):
            FleetSim(FleetSpec(tenants=[tenant(strategy="warp")],
                               fabrics=fabrics(1)))

    @pytest.mark.parametrize("field,value", [("window", 0),
                                             ("inputs", 0)])
    def test_bad_sizes(self, field, value):
        with pytest.raises(FleetError, match="must be >= 1"):
            FleetSim(FleetSpec(tenants=[tenant(**{field: value})],
                               fabrics=fabrics(1)))

    def test_missing_injected_partition(self):
        sim = FleetSim(FleetSpec(tenants=[tenant()], fabrics=fabrics(1)),
                       partitions={"not-enzyme": object()})
        with pytest.raises(FleetError, match="no injected partition"):
            sim.run()


# -- end-to-end reports -------------------------------------------------------


@pytest.fixture(scope="module")
def small_report():
    spec = synthesize_fleet(
        6, 3, scenarios=("enzyme", "bursty"), strategies=("iced",),
        inputs=45, window=10, seed=2, failed_fabrics=(1,),
        slo=TenantSLO(p99_latency_cycles=1.0),
    )
    return FleetSim(spec).run()


class TestFleetReport:
    def test_report_shape(self, small_report):
        report = small_report
        assert report["schema"] == 1
        assert report["num_tenants"] == 6
        assert report["healthy_fabrics"] == 2
        assert set(report["tenants"]) == {f"t{i:05d}" for i in range(6)}
        for row in report["tenants"].values():
            for key in ("scenario", "app", "strategy", "fabric",
                        "energy_uj", "p99_latency_cycles",
                        "makespan_cycles", "slo"):
                assert key in row

    def test_failed_fabric_hosts_nothing(self, small_report):
        failed_row = small_report["fabrics"]["1"]
        assert failed_row["failed"] is True
        assert failed_row["tenants"] == 0
        assert failed_row["load_cycles"] == 0.0

    def test_impossible_slo_flags_every_tenant(self, small_report):
        rollup = small_report["rollup"]
        assert rollup["slo_violations"] == 6
        assert len(rollup["violating_tenants"]) == 6
        for row in small_report["tenants"].values():
            assert row["slo"]["violations"] == ["p99_latency"]

    def test_rollup_totals_match_tenants(self, small_report):
        rows = small_report["tenants"].values()
        rollup = small_report["rollup"]
        assert rollup["total_inputs"] == sum(r["inputs"] for r in rows)
        assert rollup["total_energy_uj"] == pytest.approx(
            sum(r["energy_uj"] for r in rows))
        max_load = max(f["load_cycles"]
                       for f in small_report["fabrics"].values())
        assert rollup["max_fabric_load_cycles"] == max_load

    def test_utilization_normalized_to_max(self, small_report):
        utils = [f["utilization"]
                 for f in small_report["fabrics"].values()
                 if not f["failed"]]
        assert max(utils) == 1.0
        assert all(0.0 <= u <= 1.0 for u in utils)

    def test_canonical_report_drops_stats_only(self, small_report):
        canon = canonical_report(small_report)
        assert "stats" not in canon
        assert set(small_report) - set(canon) == {"stats"}

    def test_render_summary_mentions_the_basics(self, small_report):
        text = render_fleet_summary(small_report)
        assert "6 tenants" in text
        assert "2/3 healthy" in text
        assert "FAILED" in text


# -- CLI ----------------------------------------------------------------------


class TestFleetCli:
    def test_run_json_and_out(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "fleet.json"
        code = main(["fleet", "run", "--tenants", "4", "--fabrics", "2",
                     "--scenarios", "enzyme", "--inputs", "30",
                     "--json", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        payload = json.loads(stdout[:stdout.rindex("}") + 1])
        assert payload["num_tenants"] == 4
        written = json.loads(out.read_text())
        assert written["num_tenants"] == 4
        assert "stats" not in written  # canonical on disk

    def test_unknown_placement_exits_2(self, capsys):
        from repro.__main__ import main

        code = main(["fleet", "run", "--tenants", "2", "--fabrics", "1",
                     "--placement", "nope", "--scenarios", "enzyme",
                     "--inputs", "30"])
        assert code == 2
        assert "unknown placement" in capsys.readouterr().err
