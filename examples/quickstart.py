"""Quickstart: map a kernel onto a DVFS-island CGRA and compare designs.

Run:  python examples/quickstart.py
"""

from repro import (
    CGRA,
    assign_per_tile_dvfs,
    average_dvfs_fraction,
    load_kernel,
    map_baseline,
    map_dvfs_aware,
    mapping_power,
    simulate_execution,
    utilization_stats,
    validate_mapping,
)


def main() -> None:
    # The paper's prototype: a 6x6 fabric with 2x2-tile DVFS islands.
    cgra = CGRA.build(6, 6, island_shape=(2, 2))
    kernel = load_kernel("fir")
    print(f"fabric : {cgra}")
    print(f"kernel : {kernel}")
    print()

    # Three designs of section V: conventional, per-tile DVFS (UE-CGRA
    # style), and ICED's island-aware mapping.
    baseline = map_baseline(kernel, cgra)
    per_tile = assign_per_tile_dvfs(baseline)
    iced = map_dvfs_aware(kernel, cgra)

    print(f"{'design':<16}{'II':>4}{'util':>8}{'level':>8}"
          f"{'power mW':>10}{'us/1k iters':>13}")
    for name, mapping in (("baseline", baseline),
                          ("per-tile DVFS", per_tile),
                          ("ICED", iced)):
        report = validate_mapping(mapping)  # independent re-check
        stats = utilization_stats(
            mapping, report, include_gated=(name == "baseline")
        )
        power = mapping_power(mapping, report=report)
        execution = simulate_execution(mapping, 1000, report)
        print(f"{name:<16}{mapping.ii:>4}{stats.average:>8.2f}"
              f"{average_dvfs_fraction(mapping):>8.2f}"
              f"{power.total_mw:>10.1f}"
              f"{execution.execution_time_us:>13.1f}")

    print()
    print("ICED island levels:")
    for island in cgra.islands:
        level = iced.island_levels[island.id]
        print(f"  island {island.id}: {level.name}")


if __name__ == "__main__":
    main()
