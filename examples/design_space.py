"""Design-space exploration with the ICED framework.

The paper positions ICED as a *framework*: island size, fabric size,
DVFS level count and FU latencies are all parameters. This example
sweeps a small design space for one workload mix and prints the
Pareto-relevant corner of (performance, power, area) — the workflow an
architect would run before committing to a configuration.

Run:  python examples/design_space.py
"""

from repro import CGRA, load_kernel, map_baseline, map_dvfs_aware
from repro.arch.dvfs import scaled_config
from repro.errors import MappingError
from repro.power import area_report, mapping_power

WORKLOAD = ("fir", "spmv", "histogram")


def evaluate(cgra: CGRA) -> tuple[float, float] | None:
    """(geomean II, average power) of the workload on one design."""
    ii_product, power_sum = 1.0, 0.0
    for name in WORKLOAD:
        try:
            mapping = map_dvfs_aware(load_kernel(name), cgra)
        except MappingError:
            return None
        ii_product *= mapping.ii
        power_sum += mapping_power(mapping).total_mw
    return ii_product ** (1 / len(WORKLOAD)), power_sum / len(WORKLOAD)


def main() -> None:
    print(f"workload: {', '.join(WORKLOAD)}\n")
    print(f"{'design':<28}{'geo II':>8}{'power mW':>10}{'area mm2':>10}")

    designs: list[tuple[str, CGRA]] = []
    for size in (4, 6):
        for island in ((1, 1), (2, 2), (3, 3)):
            if island[0] > size:
                continue
            designs.append((
                f"{size}x{size}, {island[0]}x{island[1]} islands",
                CGRA.build(size, size, island_shape=island),
            ))
    designs.append((
        "6x6, 2x2 islands, 4 levels",
        CGRA.build(6, 6, dvfs=scaled_config(4)),
    ))

    rows = []
    for label, cgra in designs:
        result = evaluate(cgra)
        if result is None:
            print(f"{label:<28}{'(unmappable)':>8}")
            continue
        geo_ii, power = result
        style = "per_tile" if cgra.islands[0].num_tiles == 1 else "island"
        area = area_report(cgra, dvfs_style=style).total_mm2
        rows.append((label, geo_ii, power, area))
        print(f"{label:<28}{geo_ii:>8.2f}{power:>10.1f}{area:>10.2f}")

    best = min(rows, key=lambda r: r[1] * r[2])  # naive II*power score
    print(f"\nbest II*power trade-off: {best[0]}")

    print("\nfor reference, the no-DVFS baseline on the paper's 6x6:")
    cgra = CGRA.build(6, 6)
    power_sum = 0.0
    for name in WORKLOAD:
        mapping = map_baseline(load_kernel(name), cgra)
        power_sum += mapping_power(mapping).total_mw
    print(f"  baseline average power: {power_sum / len(WORKLOAD):.1f} mW")


if __name__ == "__main__":
    main()
