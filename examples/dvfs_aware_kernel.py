"""DVFS-aware mapping, inside out.

Walks one ML kernel (spmv, whose loop-carried dependence limits the II)
through Algorithm 1's labels, Algorithm 2's island assignment, and the
island-size trade-off of Fig 4 — on a single fabric, end to end.

Run:  python examples/dvfs_aware_kernel.py
"""

from collections import Counter

from repro import CGRA, load_kernel, map_baseline, map_dvfs_aware
from repro.dfg import rec_mii
from repro.dfg.analysis import critical_cycle_nodes
from repro.mapper.labeling import label_dvfs_levels
from repro.power import mapping_power


def main() -> None:
    kernel = load_kernel("spmv")
    cgra = CGRA.build(6, 6, island_shape=(2, 2))
    ii = rec_mii(kernel)
    print(f"{kernel}: RecMII = {ii}")

    # -- Algorithm 1: label every node with a preferred level ----------
    labels = label_dvfs_levels(kernel, cgra, ii)
    print("\nDVFS labels (Algorithm 1):")
    print(" ", Counter(level.name for level in labels.values()))
    critical = critical_cycle_nodes(kernel)
    print(f"  critical-recurrence nodes (pinned to normal): "
          f"{sorted(kernel.node(n).label for n in critical)}")

    # -- Algorithm 2: island-aware placement ---------------------------
    baseline = map_baseline(kernel, cgra)
    iced = map_dvfs_aware(kernel, cgra)
    print(f"\nbaseline II = {baseline.ii}, ICED II = {iced.ii} "
          "(DVFS awareness must not cost performance)")
    print("ICED island levels:",
          {i: lv.name for i, lv in sorted(iced.island_levels.items())})
    print(f"power: baseline {mapping_power(baseline).total_mw:.1f} mW "
          f"-> ICED {mapping_power(iced).total_mw:.1f} mW")

    # -- Fig 4 in miniature: island size vs performance ---------------
    print("\nisland-size sweep (normalized performance vs baseline):")
    for shape in ((1, 1), (2, 2), (3, 3), (6, 6)):
        fabric = cgra.with_islands(shape)
        mapping = map_dvfs_aware(kernel, fabric)
        perf = baseline.ii / mapping.ii
        power = mapping_power(mapping).total_mw
        print(f"  {shape[0]}x{shape[1]:<3} islands: II={mapping.ii:<3} "
              f"perf={perf:5.2f}  power={power:6.1f} mW")


if __name__ == "__main__":
    main()
