"""Compile your own kernel: AST -> DFG -> mapping, functionally checked.

Writes a small loop nest in the frontend language, lowers it with
partial predication (the LLVM substitute of this reproduction), proves
the lowering correct by running both the AST and the DFG on real data,
then maps it onto the CGRA with DVFS awareness.

Run:  python examples/compile_your_own.py
"""

import numpy as np

from repro import CGRA, map_dvfs_aware, validate_mapping
from repro.dfg import dfg_stats
from repro.frontend import (
    Accumulate,
    Assign,
    Bin,
    Cmp,
    Const,
    For,
    If,
    Kernel,
    Ref,
    Var,
    lower_kernel,
    run_kernel_ast,
    run_lowered_dfg,
)


def build_kernel() -> Kernel:
    """Clipped correlation: out[i] = max(0, sum_j a[i+j] * b[j])."""
    n, taps = 24, 4
    return Kernel(
        name="clipped_corr",
        arrays={"a": n + taps, "b": taps, "out": n},
        body=For("i", 0, n, [
            Assign(Var("acc"), Const(0.0)),
            For("j", 0, taps, [
                Accumulate(Var("acc"), "+",
                           Bin("*", Ref("a", Bin("+", Var("i"), Var("j"))),
                               Ref("b", Var("j")))),
            ]),
            If(Cmp(">", Var("acc"), Const(0.0)),
               then=[Assign(Ref("out", Var("i")), Var("acc"))],
               orelse=[Assign(Ref("out", Var("i")), Const(0.0))]),
        ]),
    )


def main() -> None:
    kernel = build_kernel()
    print(f"kernel: {kernel.name}, footprint "
          f"{kernel.footprint_bytes()} bytes (SPM holds 32 KiB)")

    # -- lower with loop flattening + partial predication --------------
    lowered = lower_kernel(kernel, flatten=True)
    stats = dfg_stats(lowered.dfg)
    print(f"lowered: {stats.nodes} nodes, {stats.edges} edges, "
          f"RecMII {stats.rec_mii}, {lowered.trip_count} iterations")

    # -- prove the lowering preserves semantics -------------------------
    rng = np.random.default_rng(0)
    memory = {
        name: rng.normal(size=size).tolist()
        for name, size in kernel.arrays.items()
    }
    expected = run_kernel_ast(kernel, memory)
    actual = run_lowered_dfg(lowered, memory)
    error = max(
        abs(x - y) for x, y in zip(expected["out"], actual.memory["out"])
    )
    print(f"AST vs DFG max abs error: {error:.3e}")
    assert error < 1e-12

    # -- map it onto the ICED fabric ------------------------------------
    cgra = CGRA.build(6, 6)
    mapping = map_dvfs_aware(lowered.dfg, cgra)
    validate_mapping(mapping)
    print(f"\n{mapping.summary()}")
    print("island levels:",
          {i: lv.name for i, lv in sorted(mapping.island_levels.items())})

    # -- generate the bitstream and execute it on the machine model -----
    from repro.machine import run_bitstream
    from repro.mapper.bitstream import bitstream_for_lowered

    bitstream = bitstream_for_lowered(mapping, lowered)
    print(f"\nbitstream: {bitstream.words_used()} configuration words "
          f"across {len(bitstream.words)} tiles (II={bitstream.ii})")
    machine = run_bitstream(bitstream, memory, lowered.trip_count)
    machine_error = max(
        abs(x - y) for x, y in zip(expected["out"], machine.memory["out"])
    )
    print(f"machine-level execution: {machine.cycles} cycles, "
          f"{machine.issues} issues, {machine.sends} sends, "
          f"max abs error vs reference: {machine_error:.3e}")
    assert machine_error < 1e-12


if __name__ == "__main__":
    main()
