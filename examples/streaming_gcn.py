"""Streaming acceleration: a 2-layer GCN pipeline, ICED vs DRIPS.

The GCN classifies a stream of protein-like graphs; sparse inputs
bottleneck the dense stages, dense inputs the aggregations — so the
bottleneck shifts per input and a fixed allocation wastes energy.
ICED keeps the partition and lowers non-bottleneck islands' V/f every
10 inputs; DRIPS re-shapes island allocations at full voltage.

Run:  python examples/streaming_gcn.py
"""

from repro import gcn_app, partition_app, simulate_drips, simulate_stream, streaming_cgra
from repro.streaming import EnzymeGraphStream


def main() -> None:
    fabric = streaming_cgra(6, 6)
    app = gcn_app()
    print(app)

    # 150 synthetic ENZYMES-like graphs; the first 50 profile the
    # partition (exactly the paper's setup), the rest are the run.
    inputs = EnzymeGraphStream(num_graphs=150).generate()
    profile, run = inputs[:50], inputs[50:]

    partition = partition_app(app, fabric, profile)
    print("\npartition (kernel: islands, II):")
    for placement in partition.placements:
        print(f"  {placement.kernel.name:<14} islands="
              f"{placement.island_ids} II={placement.ii}")

    iced = simulate_stream(partition, run, window=10)
    drips = simulate_drips(partition, run, window=10)

    print(f"\n{'':<8}{'cycles':>12}{'power mW':>10}{'inputs/uJ':>11}")
    for result in (iced, drips):
        print(f"{result.strategy:<8}{result.makespan_cycles:>12.0f}"
              f"{result.average_power_mw:>10.1f}"
              f"{result.perf_per_watt():>11.4f}")
    ratio = iced.perf_per_watt() / drips.perf_per_watt()
    print(f"\nICED perf/W over DRIPS: {ratio:.2f}x "
          "(the paper averages 1.12x on GCN)")

    print("\nper-window perf/W ratio (Fig 13's series):")
    for iw, dw in zip(iced.windows, drips.windows):
        r = iw.perf_per_watt() / dw.perf_per_watt()
        bar = "#" * round(20 * min(r, 2.0))
        print(f"  window {iw.index:2d}: {r:5.2f} {bar}")

    print("\nICED DVFS levels in the last window:")
    for name, level in iced.windows[-1].levels.items():
        print(f"  {name:<14} {level}")


if __name__ == "__main__":
    main()
