"""A zero-dependency approximation of ``ruff check`` (E4/E7/E9/F).

CI runs the real ruff; this script exists for environments without it
(the default dev container installs nothing beyond the test deps). It
covers the rules that actually bite in this codebase:

* E401 multiple imports on one line, E402 late module-level import
* E701/E702 compound statements, E711/E712 ``== None`` / ``== True``
* E722 bare except, E731 lambda assignment, E741 ambiguous names
* E9   syntax errors (via ``compile``)
* F401 unused import, F541 f-string without placeholders,
  F632 ``is`` with a literal, F841 unused local variable

It is intentionally conservative: no type inference, no cross-module
resolution, and it only reports patterns it is sure about — a clean
run here does not guarantee a clean ruff run, but every finding here
is a real finding there.

Usage::

    python tools/lint_approx.py [paths...]   # default: src tests benchmarks
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

#: Mirrors [tool.ruff.lint.per-file-ignores] in pyproject.toml.
PER_FILE_IGNORES = {"benchmarks/": ("E402",)}

#: ``# noqa`` (blanket) or ``# noqa: E402, F401`` (specific codes),
#: matching ruff's suppression comments.
_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


class _Names(ast.NodeVisitor):
    """Collect every identifier loaded (or referenced in strings for
    __all__-style re-exports) in a module."""

    def __init__(self) -> None:
        self.loaded: set[str] = set()
        self.exported: set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loaded.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        root = node
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name):
            self.loaded.add(root.id)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "__all__" in targets and isinstance(node.value, (ast.List,
                                                            ast.Tuple)):
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value,
                                                                str):
                    self.exported.add(elt.value)
        self.generic_visit(node)


def _import_bindings(tree: ast.Module):
    """(lineno, bound name, code) for every module-level import."""
    out = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.partition(".")[0]
                out.append((node.lineno, bound, "F401"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                out.append((node.lineno, bound, "F401"))
    return out


def _iter_funcs(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


AMBIGUOUS = {"l", "I", "O"}


def check_file(path: Path) -> list[str]:
    rel = path.as_posix()
    ignored: tuple[str, ...] = ()
    for prefix, codes in PER_FILE_IGNORES.items():
        if prefix in rel:
            ignored = codes
    source = path.read_text(encoding="utf-8")
    problems: list[str] = []

    # Per-line suppressions. A regex over raw lines can in principle
    # match a "# noqa" inside a string literal; like the rest of this
    # approximation, over-suppressing is preferred to false findings.
    noqa: dict[int, set[str] | None] = {}
    for num, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if match:
            codes = match.group("codes")
            noqa[num] = (
                {c.strip().upper() for c in codes.split(",") if c.strip()}
                if codes else None  # None == blanket "# noqa"
            )

    def report(lineno: int, code: str, message: str) -> None:
        if code in ignored:
            return
        suppressed = noqa.get(lineno, ())
        if suppressed is None or code in suppressed:
            return
        problems.append(f"{rel}:{lineno}: {code} {message}")

    try:
        tree = ast.parse(source, filename=rel)
        compile(source, rel, "exec")
    except SyntaxError as exc:
        return [f"{rel}:{exc.lineno}: E999 {exc.msg}"]

    # -- E702: real semicolon tokens (not ones inside strings) ---------------
    import io
    import tokenize

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.OP and tok.string == ";":
                report(tok.start[0], "E702", "statement separated by ;")
    except tokenize.TokenError:
        pass

    # -- E4: imports ---------------------------------------------------------
    seen_code = False
    for node in tree.body:
        is_import = isinstance(node, (ast.Import, ast.ImportFrom))
        if isinstance(node, ast.Import) and len(node.names) > 1:
            report(node.lineno, "E401", "multiple imports on one line")
        if is_import and seen_code:
            report(node.lineno, "E402",
                   "module level import not at top of file")
        if not is_import and not (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
        ) and not isinstance(node, (ast.If, ast.Try)):
            # docstrings and conditional-import guards don't count
            seen_code = True

    # -- E7 ------------------------------------------------------------------
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comp in zip(node.ops, node.comparators):
                if isinstance(comp, ast.Constant):
                    if comp.value is None and isinstance(
                        op, (ast.Eq, ast.NotEq)
                    ):
                        report(node.lineno, "E711",
                               "comparison to None with ==/!=")
                    elif isinstance(comp.value, bool) and isinstance(
                        op, (ast.Eq, ast.NotEq)
                    ):
                        report(node.lineno, "E712",
                               "comparison to True/False with ==/!=")
                if isinstance(op, (ast.Is, ast.IsNot)) and isinstance(
                    comp, ast.Constant
                ) and not isinstance(comp.value, (bool, type(None))):
                    report(node.lineno, "F632", "is comparison with literal")
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            report(node.lineno, "E722", "bare except")
        elif isinstance(node, ast.Assign) and isinstance(node.value,
                                                         ast.Lambda):
            report(node.lineno, "E731", "lambda assigned to a name")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in AMBIGUOUS:
                report(node.lineno, "E743", f"ambiguous name {node.name!r}")
            for arg in (node.args.args + node.args.posonlyargs
                        + node.args.kwonlyargs):
                if arg.arg in AMBIGUOUS:
                    report(arg.lineno, "E741",
                           f"ambiguous argument {arg.arg!r}")
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store,)
        ) and node.id in AMBIGUOUS:
            report(node.lineno, "E741", f"ambiguous name {node.id!r}")

    # -- F401 ----------------------------------------------------------------
    names = _Names()
    names.visit(tree)
    is_package_init = path.name == "__init__.py"
    for lineno, bound, code in _import_bindings(tree):
        if bound in names.loaded or bound in names.exported:
            continue
        if is_package_init:
            continue  # re-export surface; ruff needs __all__ too, but
            # every package init here either uses or __all__-lists its
            # imports
        report(lineno, code, f"{bound!r} imported but unused")

    # -- F541 ----------------------------------------------------------------
    # Skip format-spec JoinedStrs ({x:.2f} parses its spec as a nested
    # JoinedStr on 3.12) — only top-level f-strings count.
    spec_ids = {
        id(node.format_spec)
        for node in ast.walk(tree)
        if isinstance(node, ast.FormattedValue) and node.format_spec
    }
    for node in ast.walk(tree):
        if (isinstance(node, ast.JoinedStr) and id(node) not in spec_ids
                and not any(isinstance(v, ast.FormattedValue)
                            for v in node.values)):
            report(node.lineno, "F541", "f-string without placeholders")

    # -- F841 (simple, function-local, never loaded) -------------------------
    def _own_scope(func):
        """Walk a function's body without descending into nested
        class/function scopes (their bindings are not this scope's)."""
        stack = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef, ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))

    for func in _iter_funcs(tree):
        loads: set[str] = set()
        stores: dict[str, int] = {}
        for node in ast.walk(func):
            # Loads anywhere in the function (closures reading an
            # outer binding count as uses).
            if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                         ast.Load):
                loads.add(node.id)
            elif isinstance(node, (ast.AugAssign,)) and isinstance(
                node.target, ast.Name
            ):
                loads.add(node.target.id)
        for node in _own_scope(func):
            # Stores only in the function's own scope (a nested
            # class/def binds its own namespace, not this one).
            if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                         ast.Store):
                stores.setdefault(node.id, node.lineno)
        for name, lineno in stores.items():
            if name not in loads and not name.startswith("_"):
                # Only flag plain assignments (ruff skips tuple
                # unpacking, with/for targets by default too).
                for node in ast.walk(func):
                    if (isinstance(node, ast.Assign)
                            and node.lineno == lineno
                            and len(node.targets) == 1
                            and isinstance(node.targets[0], ast.Name)
                            and node.targets[0].id == name):
                        report(lineno, "F841",
                               f"local variable {name!r} never used")
                        break
    return problems


def main(argv: list[str]) -> int:
    roots = [Path(p) for p in argv] or [Path("src"), Path("tests"),
                                        Path("benchmarks"), Path("tools")]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.py")))
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for line in problems:
        print(line)
    print(f"{len(files)} files, {len(problems)} findings")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
