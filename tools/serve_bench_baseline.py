"""Regenerate the committed ``BENCH_serve.json`` baseline.

Runs the same campaign as the CI serve smoke (``benchmarks/
serve_smoke.py``) without any baseline gate and writes the canonical
report to the repository root. Run it on a quiet machine after a
change that legitimately moves the daemon's latency or coalescing
profile, review the diff, and commit the result::

    PYTHONPATH=src python tools/serve_bench_baseline.py

Pass through any serve-smoke flag to vary the campaign (the defaults
are what CI replays)::

    PYTHONPATH=src python tools/serve_bench_baseline.py --requests 500
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from benchmarks import serve_smoke  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not any(a == "--out" or a.startswith("--out=") for a in argv):
        argv += ["--out", os.path.join(REPO_ROOT, "BENCH_serve.json")]
    if any(a == "--baseline" or a.startswith("--baseline=")
           for a in argv):
        print("refusing --baseline: the regenerator writes the "
              "baseline, it does not gate against one",
              file=sys.stderr)
        return 2
    return serve_smoke.main(argv)


if __name__ == "__main__":
    sys.exit(main())
