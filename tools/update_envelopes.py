"""Regenerate the committed golden envelopes under tests/envelopes/.

Run after a deliberate model change shifts per-strategy energy/latency:

    PYTHONPATH=src python tools/update_envelopes.py [--only a,b]

Goldens are canonical JSON (sorted keys, trailing newline), one file
per scenario, produced with the default envelope parameters — the same
ones ``tests/test_scenarios.py`` recomputes against. Review the diff
before committing: an unexplained change in a strategy you did not
touch is a regression, not noise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.streaming.envelopes import (  # noqa: E402
    envelope_path,
    scenario_envelope,
    write_envelope,
)
from repro.streaming.scenarios import scenario_names  # noqa: E402

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "envelopes"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", default="",
                        help="comma list of scenarios (default: all)")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    names = args.only.split(",") if args.only else scenario_names()
    for name in names:
        envelope = scenario_envelope(name, jobs=args.jobs)
        path = envelope_path(GOLDEN_DIR, name)
        write_envelope(envelope, path)
        iced = envelope["strategies"]["iced"]
        print(f"{name:<14} -> {path.relative_to(GOLDEN_DIR.parent.parent)}"
              f"  iced={iced['energy_uj']:.1f}uJ "
              f"p99={iced['p99_latency_cycles']:.0f}cyc")
    return 0


if __name__ == "__main__":
    sys.exit(main())
